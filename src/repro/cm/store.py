"""The bin-file store: persistent compilation results.

A :class:`BinRecord` is one bin file: header (name, source digest, export
pid, import pid list, logical build time, builder-specific extras) plus
the dehydrated payload.  :class:`BinStore` is the store; it survives
"sessions" (builder instances), which is the whole point -- cross-session
reuse is what dehydration buys.

The store's *semantics* live here; the *placement* of bytes lives in a
:class:`repro.cm.backend.StoreBackend` (flat directory, sharded
directory, or a remote server fronted by a local cache -- see
:mod:`repro.cm.backend` and :mod:`repro.cm.remote`).  The on-disk form
is engineered so that *no* damage can cost more than a recompile, and
every kind of damage is detected and named:

- **Integrity.** Every header carries a CRC-128 of its payload plus a
  whole-record digest over the canonical header and the payload (the
  same CRC machinery that produces pids, ``repro.pids.crc128``).  A load
  verifies both; any mismatch, torn write, orphaned header/payload or
  unparsable JSON becomes a typed :class:`CorruptRecord` in the store's
  :class:`StoreHealthReport` and the unit silently degrades to a cache
  miss.  ``load_directory`` never raises on damage.
- **Atomicity.** Records are written payload-first via tmp-file +
  ``os.replace`` under a pid-stamped lock file (stale locks -- dead
  owner or torn content -- are detected and broken).  A crash between
  the two renames leaves a checksum mismatch, never a half-parsed record.
- **Manifest.**  ``MANIFEST.json`` lists the live records; records on
  disk but not in the manifest (a crash after a record write) are
  ignored, records in the manifest but missing on disk are reported.
- **Incremental saves.** Only records dirtied since the last save/load
  are rewritten; on-disk records whose units were removed are pruned.
  :meth:`BinStore.save_directory` returns a :class:`SaveStats` saying
  exactly what was written.
- **Safe names.** Record filenames are percent-escaped (a unit named
  ``../x`` cannot escape the store directory); the real name rides in
  the header and is round-tripped on load.

All disk access goes through the :class:`repro.cm.faults.FileSystem`
seam, so the fault-injection harness can kill a save at every possible
point -- against any backend -- and prove recovery.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.cm.backend import (  # noqa: F401  (re-exported surface)
    CACHE_INDEX_NAME,
    COMPAT_FORMATS,
    FORMAT_VERSION,
    HEADER_SUFFIX,
    JOURNAL_NAME,
    LOCK_NAME,
    MANIFEST_NAME,
    PAYLOAD_SUFFIX,
    QUARANTINE_DIR,
    RECORD_LOCK_SUFFIX,
    SHARDS_DIR,
    TMP_SUFFIX,
    DirectoryBackend,
    NullLock,
    ShardedBackend,
    StoreBackend,
    StoreError,
    StoreFullError,
    StoreLock,
    StoreLockedError,
    detect_dir_backend,
    encode_manifest,
    escape_name,
    make_backend,
    shard_of,
    unescape_name,
    _disk_full,
)
from repro.cm.backend import lock_owner as _lock_owner  # noqa: F401
from repro.cm.backend import record_stem as _record_stem
from repro.cm.faults import REAL_FS, FileSystem
from repro.obs.meter import NULL_METER, BuildMeter
from repro.pids.crc128 import CRC128, crc128_hex

#: Damage kinds whose on-disk files quarantine-aside may move (the
#: rest either have no files -- ``missing-record`` -- or describe the
#: manifest/IO layer, not a record pair).
_QUARANTINABLE_KINDS = frozenset({
    "bad-header-json", "malformed-header", "name-mismatch",
    "orphaned-header", "orphaned-payload", "payload-checksum-mismatch",
    "record-digest-mismatch",
})

#: Header fields a loadable record must carry.
_REQUIRED_FIELDS = ("name", "source_digest", "export_pid", "imports",
                    "built_at", "payload_crc", "record_digest")


# -- health reporting ----------------------------------------------------


@dataclass
class CorruptRecord:
    """One piece of quarantined damage.

    ``kind`` is the failure taxonomy: ``bad-header-json``,
    ``malformed-header``, ``name-mismatch``, ``orphaned-header``,
    ``orphaned-payload``, ``payload-checksum-mismatch``,
    ``record-digest-mismatch``, ``missing-record``, ``bad-manifest``,
    ``io-error``, ``unreadable``, ``rehydrate-failed``,
    ``stable-archive``, ``stable-rehydrate-failed``,
    ``stable-unit-skipped``.
    """

    name: str
    kind: str
    path: str = ""
    detail: str = ""


@dataclass
class StoreHealthReport:
    """What a load (or fsck) found: healthy records, quarantined damage,
    version-skipped records, and informational notes (broken stale
    locks, ignored temp files)."""

    path: str = ""
    scanned: int = 0
    loaded: list[str] = field(default_factory=list)
    corrupt: list[CorruptRecord] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.corrupt

    def add(self, name: str, kind: str, path: str = "",
            detail: str = "") -> None:
        self.corrupt.append(CorruptRecord(name, kind, path, detail))

    def quarantined(self) -> set[str]:
        """Unit names with at least one corrupt entry."""
        return {c.name for c in self.corrupt if c.name}

    def kinds_for(self, name: str) -> list[str]:
        return [c.kind for c in self.corrupt if c.name == name]

    def summary(self) -> str:
        if self.ok:
            extra = (f", {len(self.stale)} stale-format skipped"
                     if self.stale else "")
            return (f"store healthy: {len(self.loaded)} record(s)"
                    f"{extra}")
        return (f"store damaged: {len(self.corrupt)} problem(s), "
                f"{len(self.loaded)} healthy record(s)")

    def render_text(self) -> str:
        lines = [f"bin store {self.path or '(unsaved)'}: "
                 + ("HEALTHY" if self.ok else "DAMAGED")]
        lines.append(f"  records: {len(self.loaded)} healthy, "
                     f"{len(self.corrupt)} corrupt, "
                     f"{len(self.stale)} stale-format")
        for c in self.corrupt:
            label = c.name if c.name else "?"
            where = f"  {c.path}" if c.path else ""
            why = f": {c.detail}" if c.detail else ""
            lines.append(f"  corrupt [{c.kind}] {label}{where}{why}")
        for name in self.stale:
            lines.append(f"  stale-format (skipped): {name}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "scanned": self.scanned,
            "loaded": list(self.loaded),
            "stale": list(self.stale),
            "corrupt": [
                {"name": c.name, "kind": c.kind, "path": c.path,
                 "detail": c.detail}
                for c in self.corrupt
            ],
            "notes": list(self.notes),
        }


@dataclass
class SaveStats:
    """What one :meth:`BinStore.save_directory` actually did."""

    records_written: int = 0
    records_skipped: int = 0
    bytes_written: int = 0
    pruned: list[str] = field(default_factory=list)


# -- records -------------------------------------------------------------


@dataclass
class BinRecord:
    name: str
    source_digest: str
    export_pid: str
    imports: list[tuple[str, str]]
    payload: bytes
    built_at: int = 0  # logical clock at build time (make-level data)
    #: Per-exported-binding intrinsic pids ("ns:name" -> pid).  Empty on
    #: records loaded from pre-slicing (v3) stores: "no slice info ->
    #: fall back to whole-pid cutoff".
    binding_pids: dict = field(default_factory=dict)
    #: What this unit used of each import when it was compiled:
    #: provider unit -> {"ns:name": the provider's binding pid then}.
    #: An empty pid means the provider had no slice data at the time.
    used_bindings: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)


def _record_digest(header: dict, payload: bytes) -> str:
    """The whole-record digest: CRC-128 over the canonical JSON of the
    header (minus the digest fields themselves) plus the payload."""
    core = {k: v for k, v in header.items()
            if k not in ("payload_crc", "record_digest")}
    canon = json.dumps(core, sort_keys=True,
                       separators=(",", ":")).encode("utf-8")
    return CRC128().update(canon).update(payload).hexdigest()


class BinStore:
    """A collection of bin records, keyed by unit name."""

    def __init__(self, fs: FileSystem | None = None,
                 backend: StoreBackend | None = None):
        self.fs = fs if fs is not None else (
            backend.fs if backend is not None else REAL_FS)
        #: Where this store's bytes live; None until the first
        #: save/load pins one (a plain directory save pins the local
        #: backend for that path).
        self.backend: StoreBackend | None = backend
        #: Telemetry seam (no-op unless a tracing builder attaches one).
        self.meter: BuildMeter = NULL_METER
        self._records: dict[str, BinRecord] = {}
        #: Records changed since the last save/load (save rewrites only
        #: these).
        self._dirty: set[str] = set()
        #: Unit names removed since the last save (their on-disk files
        #: are pruned at the next save).
        self._removed: set[str] = set()
        #: Backend key this store's clean records mirror, if any.
        self._loaded_from: str | None = None
        #: The loaded manifest was torn or stale-format: the next save
        #: must rewrite it even if no record is dirty.
        self._manifest_stale: bool = False
        #: What the last load found; trivially healthy for a fresh store.
        self.health = StoreHealthReport()
        #: Cumulative payload bytes accepted, for benchmark reporting.
        self.bytes_written = 0

    def get(self, name: str) -> BinRecord | None:
        return self._records.get(name)

    def put(self, record: BinRecord) -> None:
        self._records[record.name] = record
        self._dirty.add(record.name)
        self._removed.discard(record.name)
        self.bytes_written += len(record.payload)

    def remove(self, name: str) -> None:
        if self._records.pop(name, None) is not None:
            self._removed.add(name)
        self._dirty.discard(name)

    def names(self) -> list[str]:
        return sorted(self._records)

    def dirty_names(self) -> list[str]:
        return sorted(self._dirty)

    def clear(self) -> None:
        self._removed.update(self._records)
        self._records.clear()
        self._dirty.clear()

    def total_payload_bytes(self) -> int:
        return sum(len(r.payload) for r in self._records.values())

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __len__(self) -> int:
        return len(self._records)

    # -- disk persistence ---------------------------------------------------

    def _header_for(self, record: BinRecord) -> dict:
        header = {
            "format": FORMAT_VERSION,
            "name": record.name,
            "source_digest": record.source_digest,
            "export_pid": record.export_pid,
            "imports": record.imports,
            "built_at": record.built_at,
            "binding_pids": record.binding_pids,
            "used_bindings": record.used_bindings,
            "extra": record.extra,
            "payload_crc": crc128_hex(record.payload),
        }
        header["record_digest"] = _record_digest(header, record.payload)
        return header

    def _backend_for(self, path: str) -> StoreBackend:
        """The backend a save/checkpoint aimed at ``path`` should use:
        this store's pinned backend when the path is its anchor (the
        supervisor and daemon address checkpoints by the store
        directory), otherwise the detected local backend for ``path``."""
        if self.backend is not None and self.backend.covers(path):
            backend = self.backend
            if (isinstance(backend, DirectoryBackend)
                    and backend.fs is not self.fs):
                # The caller swapped ``store.fs`` (fault harnesses do):
                # rebuild the same-layout backend over the new seam.
                backend = type(backend)(backend.root, fs=self.fs)
            return backend
        return detect_dir_backend(path, fs=self.fs)

    def save_directory(self, path: str, lock_timeout: float = 5.0,
                       merge: bool = False) -> SaveStats:
        """Write the store to ``path`` atomically and incrementally.

        ``path`` addresses a backend: this store's own backend when the
        path is its anchor directory (so daemon saves and supervisor
        checkpoints transparently hit sharded/remote stores), otherwise
        the detected local backend for that directory.  Only dirty
        records are rewritten (payload first, header second, each via
        tmp-file + atomic rename); removed units' files and unknown
        record debris are pruned; the manifest is refreshed.  The whole
        save runs under the store lock.  Returns what was actually
        written.

        With ``merge=True`` the save is safe against *other live
        writers* on the same store: each record's header+payload pair is
        written under a per-record lock (so two writers racing on one
        unit can never interleave into a mismatched pair), and the
        manifest is merged read-modify-write under the store lock
        instead of overwritten -- records this store never heard of are
        preserved, so two builders racing on one store converge to the
        union of their work, never corruption.
        """
        backend = self._backend_for(path)
        with self.meter.span("store.save", cat="store", path=path,
                             merge=merge) as sp:
            backend.begin_save()
            try:
                if merge:
                    stats = self._save_merge(backend, lock_timeout)
                else:
                    stats = self._save_plain(backend, lock_timeout)
            finally:
                backend.end_save()
            sp.set(records=stats.records_written,
                   bytes=stats.bytes_written, pruned=len(stats.pruned))
            if self.meter.enabled:
                self.meter.counter("store.bytes_saved",
                                   stats.bytes_written)
            return stats

    def _save_plain(self, backend: StoreBackend,
                    lock_timeout: float) -> SaveStats:
        """The single-writer save: everything under the store lock."""
        backend.open()
        stats = SaveStats()
        lock = backend.store_lock(lock_timeout)
        lock.acquire(required=True)
        try:
            dirty = (set(self._records)
                     if backend.key != self._loaded_from
                     else set(self._dirty))
            changed = bool(dirty or self._removed
                           or backend.key != self._loaded_from
                           or self._manifest_stale)
            for name in sorted(dirty):
                record = self._records[name]
                stem = escape_name(name)
                header_bytes = json.dumps(
                    self._header_for(record), indent=1).encode("utf-8")
                backend.put(stem, header_bytes, record.payload)
                stats.records_written += 1
                stats.bytes_written += len(record.payload) + len(header_bytes)
            stats.records_skipped = len(self._records) - len(dirty)

            if changed:
                manifest_bytes = encode_manifest(
                    {escape_name(n): n for n in self._records})
                backend.write_manifest(manifest_bytes)
                stats.bytes_written += len(manifest_bytes)

            live = {escape_name(n) for n in self._records}
            stats.pruned.extend(backend.prune(live))

            self._dirty.clear()
            self._removed.clear()
            self._loaded_from = backend.key
            self._manifest_stale = False
            self.backend = backend
            return stats
        finally:
            lock.release()

    def _save_merge(self, backend: StoreBackend,
                    lock_timeout: float) -> SaveStats:
        """The concurrent-writer save: per-record locks around each
        header+payload pair, then a read-modify-write manifest merge
        under the store lock.

        Two invariants make racing writers safe:

        - a record's two files are only ever replaced while holding its
          ``.rlock``, so a reader can never see writer A's header next
          to writer B's payload (each pair is internally consistent;
          the whole-record digest would expose exactly that mix);
        - manifest entries are only added for records whose files are
          already on disk, and only removed (with their files) by the
          writer that removed the unit -- so the manifest never names a
          record that was not completely written.

        Unknown debris is deliberately *not* pruned here: a file this
        writer does not recognize may be another live writer's
        just-written record that is not yet manifested.  Only stale
        record locks (dead owners) are swept.
        """
        backend.open()
        stats = SaveStats()
        dirty = (set(self._records) if backend.key != self._loaded_from
                 else set(self._dirty))
        for name in sorted(dirty):
            record = self._records[name]
            stem = escape_name(name)
            header_bytes = json.dumps(
                self._header_for(record), indent=1).encode("utf-8")
            rlock = backend.record_lock(stem, lock_timeout)
            rlock.acquire(required=True)
            try:
                backend.put(stem, header_bytes, record.payload)
            finally:
                rlock.release()
            stats.records_written += 1
            stats.bytes_written += len(record.payload) + len(header_bytes)
        stats.records_skipped = len(self._records) - len(dirty)

        lock = backend.store_lock(lock_timeout)
        lock.acquire(required=True)
        try:
            for name in sorted(self._removed):
                stem = escape_name(name)
                backend.delete(stem)
                stats.pruned.append(stem)
            adds = {escape_name(n): n for n in self._records}
            removes = {escape_name(n) for n in self._removed}
            stats.bytes_written += backend.merge_manifest(adds, removes)

            stats.pruned.extend(backend.sweep_dead_record_locks())

            self._dirty.clear()
            self._removed.clear()
            self._loaded_from = backend.key
            self._manifest_stale = False
            self.backend = backend
            return stats
        finally:
            lock.release()

    @classmethod
    def load_directory(cls, path: str, fs: FileSystem | None = None,
                       lock_timeout: float = 5.0,
                       meter: BuildMeter = NULL_METER,
                       quarantine: bool = False,
                       backend: StoreBackend | None = None) -> "BinStore":
        """Load a store, quarantining every kind of damage.

        ``path`` names a local store directory (the layout -- flat or
        sharded -- is detected); pass ``backend`` explicitly for a
        remote store.  Never raises on damage: a corrupt, torn,
        orphaned or unreadable record becomes a :class:`CorruptRecord`
        in ``store.health`` and the affected unit is simply absent (a
        cache miss).  ``meter`` observes the scan and every quarantine
        decision; it stays attached to the returned store.

        With ``quarantine=True`` the damaged record files are also
        moved *aside* into a ``quarantine/`` subdirectory for later
        inspection (so the next load starts clean).  The move itself is
        hardened: if it fails -- disk full, permissions -- the record
        stays exactly where it was and the damage remains an in-memory
        miss; a pair is never half-moved.
        """
        with meter.span("store.load", cat="store", path=path) as sp:
            store = cls._load_directory(path, fs, lock_timeout, meter,
                                        quarantine, backend)
            sp.set(records=len(store._records),
                   corrupt=len(store.health.corrupt),
                   stale=len(store.health.stale))
            if meter.enabled:
                for c in store.health.corrupt:
                    meter.event("store.quarantine", cat="store",
                                unit=c.name, kind=c.kind)
            return store

    @classmethod
    def _load_directory(cls, path: str, fs: FileSystem | None,
                        lock_timeout: float, meter: BuildMeter,
                        quarantine: bool = False,
                        backend: StoreBackend | None = None) -> "BinStore":
        fs = fs if fs is not None else (
            backend.fs if backend is not None else REAL_FS)
        if backend is None:
            backend = detect_dir_backend(path, fs=fs)
        store = cls(fs=fs, backend=backend)
        store.meter = meter
        report = store.health
        report.path = backend.label
        if not backend.exists():
            report.notes.extend(backend.notes)
            del backend.notes[:]
            report.notes.append(f"no store directory at {backend.label}")
            return store

        lock = backend.store_lock(lock_timeout)
        got = lock.acquire(required=False)
        report.notes.extend(lock.notes)
        try:
            try:
                header_stems, payload_stems = backend.list_pairs(
                    notes=report.notes)
            except OSError as err:
                report.add("", "io-error", backend.label, str(err))
                report.notes.extend(backend.notes)
                del backend.notes[:]
                return store

            manifest = _read_manifest(backend, report)
            if manifest is None and backend.manifest_present():
                # A torn or stale-format manifest survives a no-op
                # session unless the next save is forced to heal it.
                store._manifest_stale = True

            report.scanned = len(header_stems)
            loaded_stems: dict[str, str] = {}  # stem -> unit name
            for stem in sorted(header_stems):
                try:
                    name = store._load_record(backend, stem, report)
                except Exception as err:  # absolute no-raise guarantee
                    report.add(unescape_name(stem), "unreadable",
                               backend.describe(stem, HEADER_SUFFIX),
                               f"{type(err).__name__}: {err}")
                    name = None
                if name is not None:
                    loaded_stems[stem] = name

            for stem in sorted(payload_stems - header_stems):
                report.add(unescape_name(stem), "orphaned-payload",
                           backend.describe(stem, PAYLOAD_SUFFIX),
                           "payload file has no header")

            if manifest is not None:
                known = {c.name for c in report.corrupt}
                for stem, name in sorted(manifest.items()):
                    if stem not in header_stems and \
                            stem not in payload_stems and \
                            name not in known:
                        report.add(name, "missing-record",
                                   backend.describe(stem, HEADER_SUFFIX),
                                   "listed in manifest but not on disk")
                for stem, name in sorted(loaded_stems.items()):
                    if stem not in manifest:
                        # A crash left a record the manifest never saw;
                        # drop it (a later save prunes the files).
                        store._records.pop(name, None)
                        report.notes.append(
                            f"ignoring unmanifested record {name!r} "
                            f"(crash leftover)")

            if quarantine and report.corrupt:
                store._quarantine_aside(backend, report)

            report.notes.extend(backend.notes)
            del backend.notes[:]
            report.loaded = sorted(store._records)
            store._loaded_from = backend.key
            store.bytes_written = 0
            return store
        finally:
            if got:
                lock.release()

    def _quarantine_aside(self, backend: StoreBackend,
                          report: StoreHealthReport) -> None:
        """Move damaged record file pairs into ``quarantine/``.

        Hardened against the disk-full fault family: any failure while
        moving a pair rolls the already-moved half back (a record is
        never half-moved), the record stays an in-memory miss exactly
        as before, and the failure is *noted* -- this path never
        raises.  Moved stems are healed out of the manifest so the next
        load does not report them as ``missing-record``.
        """
        stems: dict[str, str] = {}  # stem -> unit name (for notes)
        for c in report.corrupt:
            if c.kind not in _QUARANTINABLE_KINDS or not c.path:
                continue
            stem = _record_stem(os.path.basename(c.path))
            if stem is not None:
                stems[stem] = c.name
        if not stems:
            return
        err = backend.ensure_quarantine_dir()
        if err is not None:
            report.notes.append(f"quarantine-aside skipped: {err}")
            return
        moved: list[str] = []
        for stem in sorted(stems):
            did_move, move_err = backend.quarantine_pair(stem)
            if move_err is not None:
                report.notes.append(
                    f"quarantine-aside failed for {stem!r}: {move_err}; "
                    f"record left in place (in-memory miss)")
                continue
            if did_move:
                moved.append(stem)
                if self.meter.enabled:
                    self.meter.event("store.quarantine_aside",
                                     cat="store", unit=stems[stem],
                                     stem=stem)
        if moved:
            report.notes.append(
                f"moved {len(moved)} damaged record(s) aside to "
                f"{QUARANTINE_DIR}/")
            self._heal_manifest(backend, moved, report)

    def _heal_manifest(self, backend: StoreBackend, moved: list[str],
                       report: StoreHealthReport) -> None:
        """Drop moved stems from MANIFEST.json (best effort; a failed
        heal just means the next load reports ``missing-record``)."""
        try:
            manifest = _read_manifest(backend, StoreHealthReport())
            if manifest is None:
                return
            gone = set(moved)
            healed = {s: n for s, n in manifest.items() if s not in gone}
            if healed == manifest:
                return
            backend.write_manifest(encode_manifest(healed))
        except (OSError, StoreError) as err:
            report.notes.append(
                f"quarantine-aside: manifest heal skipped: {err}")

    def _load_record(self, backend: StoreBackend, stem: str,
                     report: StoreHealthReport) -> str | None:
        """Verify and load one record; returns its unit name when
        healthy, otherwise records the damage and returns None."""
        header_file = backend.describe(stem, HEADER_SUFFIX)
        display = unescape_name(stem)
        try:
            raw = backend.read_header(stem)
        except OSError as err:
            report.add(display, "io-error", header_file, str(err))
            return None
        try:
            header = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            report.add(display, "bad-header-json", header_file, str(err))
            return None
        if not isinstance(header, dict):
            report.add(display, "bad-header-json", header_file,
                       "header is not a JSON object")
            return None
        if header.get("format") not in COMPAT_FORMATS:
            report.stale.append(display)
            return None
        missing = [f for f in _REQUIRED_FIELDS if f not in header]
        if missing:
            report.add(display, "malformed-header", header_file,
                       f"missing field(s): {', '.join(missing)}")
            return None
        name = header["name"]
        if not isinstance(name, str) or escape_name(name) != stem:
            report.add(display, "name-mismatch", header_file,
                       f"header names {name!r}, which does not belong "
                       f"in file {stem + HEADER_SUFFIX!r}")
            return None

        payload_file = backend.describe(stem, PAYLOAD_SUFFIX)
        if not backend.has_payload(stem):
            report.add(name, "orphaned-header", header_file,
                       "payload file missing")
            return None
        try:
            payload = backend.read_payload(stem)
        except OSError as err:
            report.add(name, "io-error", payload_file, str(err))
            return None
        if crc128_hex(payload) != header["payload_crc"]:
            report.add(name, "payload-checksum-mismatch", payload_file,
                       "payload bytes do not match the header's checksum")
            return None
        if _record_digest(header, payload) != header["record_digest"]:
            report.add(name, "record-digest-mismatch", header_file,
                       "whole-record digest mismatch (header tampered "
                       "or torn)")
            return None
        imports = header["imports"]
        if not (isinstance(imports, list)
                and all(isinstance(p, list) and len(p) == 2
                        and all(isinstance(x, str) for x in p)
                        for p in imports)):
            report.add(name, "malformed-header", header_file,
                       "imports is not a list of (name, pid) pairs")
            return None
        # Slice fields: absent on v3 records (load empty -> whole-pid
        # cutoff); when present they must be well-formed.
        binding_pids = header.get("binding_pids", {})
        if not _is_str_table(binding_pids):
            report.add(name, "malformed-header", header_file,
                       "binding_pids is not a {key: pid} table")
            return None
        used_bindings = header.get("used_bindings", {})
        if not (isinstance(used_bindings, dict)
                and all(isinstance(k, str) and _is_str_table(v)
                        for k, v in used_bindings.items())):
            report.add(name, "malformed-header", header_file,
                       "used_bindings is not a {provider: {key: pid}} "
                       "table")
            return None

        self._records[name] = BinRecord(
            name=name,
            source_digest=header["source_digest"],
            export_pid=header["export_pid"],
            imports=[tuple(pair) for pair in imports],
            payload=payload,
            built_at=header["built_at"],
            binding_pids=binding_pids,
            used_bindings=used_bindings,
            extra=header.get("extra", {}),
        )
        return name

    @classmethod
    def fsck(cls, path: str, fs: FileSystem | None = None,
             lock_timeout: float = 5.0,
             quarantine: bool = False,
             backend: StoreBackend | None = None) -> StoreHealthReport:
        """Check a store's health without building anything.  Detects
        the local layout (flat/sharded) from the directory; pass
        ``backend`` for a remote store.  ``quarantine=True`` also moves
        damaged files aside (see :meth:`load_directory`)."""
        return cls.load_directory(path, fs=fs, lock_timeout=lock_timeout,
                                  quarantine=quarantine,
                                  backend=backend).health

    @staticmethod
    def disk_signature(path: str, fs: FileSystem | None = None,
                       backend: StoreBackend | None = None) -> tuple:
        """A cheap change signature of a store: the sorted
        ``(filename, (mtime_ns, size))`` of every record file and the
        manifest.  Two equal signatures mean no other writer has
        touched the store since the first was taken; the build daemon
        takes one after each save and reloads the store only when the
        on-disk signature has moved (another process built, fsck
        quarantined something, a test reached in).  Locks, journals,
        tmp files and quarantine debris are excluded -- they come and
        go without changing the records clients would load."""
        if backend is None:
            backend = detect_dir_backend(path, fs=fs)
        return backend.signature()


def sweep_stale_artifacts(path: str,
                          fs: FileSystem | None = None,
                          backend: StoreBackend | None = None) -> list[str]:
    """Sweep a killed prior run's debris out of a store.

    Two kinds of leftovers survive a ``kill -9`` mid-build and would
    otherwise haunt a long-lived daemon forever:

    - a stale ``BUILD_JOURNAL.json``: a build that *completes* clears
      its journal, so one found lying around at daemon startup is a
      torn checkpoint from a killed run.  The store itself is already
      consistent (checkpoint saves are atomic per record), so the
      journal has nothing left to resume and only makes a later
      ``--resume`` trust counts from a build that no longer exists;
    - orphaned ``.rlock`` record locks whose owner pid is dead or
      unreadable: merge-savers skip records someone else holds, so a
      dead owner's lock would permanently shadow its record.

    Live locks (owner pid still running) are left alone.  Best effort:
    an unreadable directory sweeps nothing, a failed remove skips that
    entry.  Returns the names of the entries removed.
    """
    if backend is None:
        backend = detect_dir_backend(path, fs=fs)
    return backend.sweep_stale()


def _is_str_table(value) -> bool:
    """Is ``value`` a ``{str: str}`` dict (the slice-field shape)?"""
    return (isinstance(value, dict)
            and all(isinstance(k, str) and isinstance(v, str)
                    for k, v in value.items()))


def _read_manifest(backend: StoreBackend,
                   report: StoreHealthReport) -> dict[str, str] | None:
    """Parse the manifest into {stem: unit name}; damage is reported
    and treated as 'no manifest' (every healthy record then loads)."""
    manifest_file = backend.manifest_label()
    try:
        raw = backend.read_manifest_bytes()
        if raw is None:
            return None
        data = json.loads(raw.decode("utf-8"))
        records = data["records"]
        if data["format"] not in COMPAT_FORMATS:
            report.notes.append("stale-format manifest ignored")
            return None
        if not (isinstance(records, dict)
                and all(isinstance(k, str) and isinstance(v, str)
                        for k, v in records.items())):
            raise ValueError("records is not a name table")
        return records
    except Exception as err:
        report.add("", "bad-manifest", manifest_file,
                   f"{type(err).__name__}: {err}")
        return None
