"""The bin-file store: persistent compilation results.

A :class:`BinRecord` is one bin file: header (name, source digest, export
pid, import pid list, logical build time, builder-specific extras) plus
the dehydrated payload.  :class:`BinStore` is the ``.bin`` directory; it
survives "sessions" (builder instances), which is the whole point --
cross-session reuse is what dehydration buys.

``save_directory``/``load_directory`` give the on-disk form used by the
examples (header as JSON, payload as raw bytes).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

#: On-disk header format version; bump when the pickle registry or the
#: record layout changes incompatibly.  Mismatched records are skipped at
#: load (treated as cache misses).
FORMAT_VERSION = 2


@dataclass
class BinRecord:
    name: str
    source_digest: str
    export_pid: str
    imports: list[tuple[str, str]]
    payload: bytes
    built_at: int = 0  # logical clock at build time (make-level data)
    extra: dict = field(default_factory=dict)


class BinStore:
    """A collection of bin records, keyed by unit name."""

    def __init__(self):
        self._records: dict[str, BinRecord] = {}
        #: Cumulative bytes written, for benchmark reporting.
        self.bytes_written = 0

    def get(self, name: str) -> BinRecord | None:
        return self._records.get(name)

    def put(self, record: BinRecord) -> None:
        self._records[record.name] = record
        self.bytes_written += len(record.payload)

    def remove(self, name: str) -> None:
        self._records.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._records)

    def clear(self) -> None:
        self._records.clear()

    def total_payload_bytes(self) -> int:
        return sum(len(r.payload) for r in self._records.values())

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __len__(self) -> int:
        return len(self._records)

    # -- disk persistence ---------------------------------------------------

    def save_directory(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)
        for record in self._records.values():
            base = os.path.join(path, record.name)
            header = {
                "format": FORMAT_VERSION,
                "name": record.name,
                "source_digest": record.source_digest,
                "export_pid": record.export_pid,
                "imports": record.imports,
                "built_at": record.built_at,
                "extra": record.extra,
            }
            with open(base + ".bin.json", "w") as f:
                json.dump(header, f, indent=1)
            with open(base + ".bin", "wb") as f:
                f.write(record.payload)

    @classmethod
    def load_directory(cls, path: str) -> "BinStore":
        store = cls()
        for entry in sorted(os.listdir(path)):
            if not entry.endswith(".bin.json"):
                continue
            with open(os.path.join(path, entry)) as f:
                header = json.load(f)
            if header.get("format") != FORMAT_VERSION:
                continue  # stale format: recompile from source
            with open(os.path.join(path, header["name"] + ".bin"), "rb") as f:
                payload = f.read()
            store.put(BinRecord(
                name=header["name"],
                source_digest=header["source_digest"],
                export_pid=header["export_pid"],
                imports=[tuple(pair) for pair in header["imports"]],
                payload=payload,
                built_at=header["built_at"],
                extra=header.get("extra", {}),
            ))
        store.bytes_written = 0
        return store
