"""Projects: the source files under the compilation manager's care.

Sources live in memory with a *logical clock* standing in for file
mtimes; every add/edit advances the clock, making timestamp-based build
decisions deterministic and testable (no real-filesystem mtime
granularity games).  :meth:`Project.from_directory` loads ``.sml`` files
from disk for the runnable examples.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass
class _SourceFile:
    name: str
    text: str
    version: int  # logical mtime


class Project:
    """A named collection of unit sources with edit tracking."""

    def __init__(self):
        self._files: dict[str, _SourceFile] = {}
        self.clock = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "Project":
        project = cls()
        for name in sorted(sources):
            project.add(name, sources[name])
        return project

    @classmethod
    def from_directory(cls, path: str, suffix: str = ".sml") -> "Project":
        project = cls()
        for entry in sorted(os.listdir(path)):
            if entry.endswith(suffix):
                with open(os.path.join(path, entry)) as f:
                    project.add(entry[: -len(suffix)], f.read())
        return project

    # -- editing --------------------------------------------------------

    def _tick(self) -> int:
        self.clock += 1
        return self.clock

    def add(self, name: str, text: str) -> None:
        if name in self._files:
            raise ValueError(f"unit {name} already exists")
        self._files[name] = _SourceFile(name, text, self._tick())

    def edit(self, name: str, text: str) -> None:
        """Replace a unit's source (bumps its logical mtime even if the
        text is unchanged -- exactly what ``touch`` does to make)."""
        f = self._files[name]
        f.text = text
        f.version = self._tick()

    def touch(self, name: str) -> None:
        self.edit(name, self._files[name].text)

    def remove(self, name: str) -> None:
        del self._files[name]
        self._tick()

    # -- queries --------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._files)

    def source(self, name: str) -> str:
        return self._files[name].text

    def version(self, name: str) -> int:
        return self._files[name].version

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def __len__(self) -> int:
        return len(self._files)

    def total_lines(self) -> int:
        return sum(f.text.count("\n") + 1 for f in self._files.values())

    def __repr__(self) -> str:
        return f"<project {len(self._files)} units, clock={self.clock}>"
