"""Fault injection for the bin-file store.

The store never touches the OS directly; every disk access goes through
a :class:`FileSystem` seam.  Production code uses :data:`REAL_FS`; the
fault-injection tests swap in a :class:`FaultyFS` driven by a
deterministic :class:`FaultPlan` that simulates a process dying at an
exact point of a save -- crash *before* the N-th mutating call,
optionally tearing that write in half first.  Once "dead", every later
filesystem call raises :class:`InjectedCrash` and the lock file is left
behind, exactly as a killed process would leave it.

Two further fault modes ride the same seam:

- :class:`SlowFS` injects *latency*: calls stall, then succeed.  Slow
  is not dead -- the stale-lock breaker must leave a slow-but-live
  writer's lock alone, and lock-timeout tuning happens against this.
- :class:`TwoWriterInterleaver` serializes every filesystem call of two
  concurrent writers according to an explicit schedule string
  (``"ABAB..."``), making concurrent-writer races *deterministic*: each
  schedule is one reproducible interleaving of, say, two merge-saves
  racing on one store.

For damage *at rest* (a disk that lies, an editor that truncated a
file), the module also provides post-hoc corruptors -- truncate,
bit-flip, delete, garbage-header -- plus helpers to locate a named
record's files inside a store directory.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass


class InjectedCrash(Exception):
    """Simulated process death during a filesystem operation."""


class FileSystem:
    """The store's I/O seam; this implementation is the real filesystem."""

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as f:
            return f.read()

    def write_bytes(self, path: str, data: bytes) -> None:
        with open(path, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def isdir(self, path: str) -> bool:
        return os.path.isdir(path)

    def listdir(self, path: str) -> list[str]:
        return sorted(os.listdir(path))

    def remove(self, path: str) -> None:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def create_exclusive(self, path: str, data: bytes) -> bool:
        """Create ``path`` holding ``data`` iff it does not already
        exist; the creation itself is atomic (O_CREAT | O_EXCL)."""
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        return True

    def release_lock(self, path: str) -> None:
        self.remove(path)

    def pid_alive(self, pid: int) -> bool:
        """Is a process with this pid running?  Non-positive and
        out-of-range pids are never alive (and never signalled)."""
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True
        except (OverflowError, ValueError):
            return False
        return True


REAL_FS = FileSystem()


@dataclass
class FaultPlan:
    """A deterministic description of how a session's filesystem fails.

    ``crash_at_mutation=N`` kills the process immediately *before* its
    N-th mutating call (0-based over writes, renames, removes and lock
    creations), so sweeping N over ``0..total`` exercises every possible
    crash point of a save.  With ``torn=True`` the fatal call, when it is
    a plain write, first leaves half of its bytes on disk -- a torn
    write.  ``lock_pid`` substitutes the pid recorded in lock files, so a
    test can simulate a lock abandoned by a dead process."""

    crash_at_mutation: int | None = None
    torn: bool = False
    lock_pid: int | None = None


class FaultyFS(FileSystem):
    """A filesystem that fails according to a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan if plan is not None else FaultPlan()
        #: Mutating calls completed so far.
        self.mutations = 0
        #: Set once the planned crash fires; all later calls fail.
        self.dead = False

    def _check_alive(self) -> None:
        if self.dead:
            raise InjectedCrash("filesystem call after simulated crash")

    def _mutation(self) -> bool:
        """Account one mutating call; returns True when this call is the
        fatal one (caller decides whether to tear first)."""
        self._check_alive()
        plan = self.plan
        if (plan.crash_at_mutation is not None
                and self.mutations >= plan.crash_at_mutation):
            self.dead = True
            return True
        self.mutations += 1
        return False

    # -- reads (a dead process cannot read either) -----------------------

    def read_bytes(self, path: str) -> bytes:
        self._check_alive()
        return super().read_bytes(path)

    def listdir(self, path: str) -> list[str]:
        self._check_alive()
        return super().listdir(path)

    # -- mutations -------------------------------------------------------

    def write_bytes(self, path: str, data: bytes) -> None:
        if self._mutation():
            if self.plan.torn and data:
                super().write_bytes(path, data[:max(1, len(data) // 2)])
            raise InjectedCrash(f"crash during write of {path}")
        super().write_bytes(path, data)

    def replace(self, src: str, dst: str) -> None:
        if self._mutation():
            raise InjectedCrash(f"crash before rename of {src}")
        super().replace(src, dst)

    def remove(self, path: str) -> None:
        if self._mutation():
            raise InjectedCrash(f"crash before remove of {path}")
        super().remove(path)

    def makedirs(self, path: str) -> None:
        self._check_alive()
        super().makedirs(path)

    def create_exclusive(self, path: str, data: bytes) -> bool:
        if self._mutation():
            raise InjectedCrash(f"crash before lock creation at {path}")
        if self.plan.lock_pid is not None:
            try:
                payload = json.loads(data)
                payload["pid"] = self.plan.lock_pid
                data = json.dumps(payload).encode()
            except ValueError:
                pass
        return super().create_exclusive(path, data)

    def release_lock(self, path: str) -> None:
        if self.dead:
            return  # a dead process never cleans up its lock
        super().release_lock(path)


# -- latency injection ---------------------------------------------------


class SlowFS(FileSystem):
    """A filesystem whose calls stall, then succeed (slow-IO, not
    failure).

    Wraps any base filesystem (so it stacks under/over :class:`FaultyFS`
    if needed).  ``write_delay`` stalls every mutating call --
    ``write_bytes``, ``replace``, ``remove``, ``create_exclusive`` --
    and ``read_delay`` every read.  ``op_log`` records the stalled calls
    so tests can assert *where* time went.
    """

    def __init__(self, base: FileSystem | None = None,
                 write_delay: float = 0.0, read_delay: float = 0.0,
                 sleep=time.sleep):
        self.base = base if base is not None else REAL_FS
        self.write_delay = write_delay
        self.read_delay = read_delay
        self._sleep = sleep
        self.op_log: list[str] = []

    def _stall(self, delay: float, op: str, path: str) -> None:
        if delay > 0:
            self.op_log.append(f"{op} {os.path.basename(path)}")
            self._sleep(delay)

    def read_bytes(self, path: str) -> bytes:
        self._stall(self.read_delay, "read_bytes", path)
        return self.base.read_bytes(path)

    def write_bytes(self, path: str, data: bytes) -> None:
        self._stall(self.write_delay, "write_bytes", path)
        self.base.write_bytes(path, data)

    def replace(self, src: str, dst: str) -> None:
        self._stall(self.write_delay, "replace", dst)
        self.base.replace(src, dst)

    def remove(self, path: str) -> None:
        self._stall(self.write_delay, "remove", path)
        self.base.remove(path)

    def create_exclusive(self, path: str, data: bytes) -> bool:
        self._stall(self.write_delay, "create_exclusive", path)
        return self.base.create_exclusive(path, data)

    def release_lock(self, path: str) -> None:
        self.base.release_lock(path)

    def exists(self, path: str) -> bool:
        return self.base.exists(path)

    def isdir(self, path: str) -> bool:
        return self.base.isdir(path)

    def listdir(self, path: str) -> list[str]:
        self._stall(self.read_delay, "listdir", path)
        return self.base.listdir(path)

    def makedirs(self, path: str) -> None:
        self.base.makedirs(path)

    def pid_alive(self, pid: int) -> bool:
        return self.base.pid_alive(pid)


# -- deterministic two-writer interleaving -------------------------------


class InterleavedFS(FileSystem):
    """One writer's view of a shared store under an interleaver: every
    call first waits for that writer's turn in the schedule."""

    def __init__(self, driver: "TwoWriterInterleaver", label: str,
                 base: FileSystem):
        self._driver = driver
        self._label = label
        self._base = base

    def read_bytes(self, path: str) -> bytes:
        return self._driver._gated(self._label, self._base.read_bytes,
                                   path)

    def write_bytes(self, path: str, data: bytes) -> None:
        return self._driver._gated(self._label, self._base.write_bytes,
                                   path, data)

    def replace(self, src: str, dst: str) -> None:
        return self._driver._gated(self._label, self._base.replace,
                                   src, dst)

    def exists(self, path: str) -> bool:
        return self._driver._gated(self._label, self._base.exists, path)

    def isdir(self, path: str) -> bool:
        return self._driver._gated(self._label, self._base.isdir, path)

    def listdir(self, path: str) -> list[str]:
        return self._driver._gated(self._label, self._base.listdir, path)

    def remove(self, path: str) -> None:
        return self._driver._gated(self._label, self._base.remove, path)

    def makedirs(self, path: str) -> None:
        return self._driver._gated(self._label, self._base.makedirs,
                                   path)

    def create_exclusive(self, path: str, data: bytes) -> bool:
        return self._driver._gated(self._label,
                                   self._base.create_exclusive,
                                   path, data)

    def release_lock(self, path: str) -> None:
        return self._driver._gated(self._label, self._base.release_lock,
                                   path)

    def pid_alive(self, pid: int) -> bool:
        return self._base.pid_alive(pid)


class TwoWriterInterleaver:
    """Drive two writers' filesystem calls in an exact order.

    ``schedule`` is a string over the writer labels (``"ABABAB"``,
    ``"AABB..."``): the k-th granted filesystem call must come from the
    writer the k-th character names.  Entries for a writer that already
    finished are skipped; when the schedule is exhausted (or a writer
    stalls past ``step_timeout`` -- e.g. it is blocked on the other's
    store lock while the schedule still names it) the gate falls open
    and both writers free-run to completion.  Given a schedule and two
    deterministic writers, the resulting on-disk interleaving is fully
    reproducible.

    Use :meth:`fs` to get each writer's gated filesystem, then
    :meth:`run` to execute both concurrently.
    """

    def __init__(self, schedule: str, base: FileSystem | None = None,
                 step_timeout: float = 10.0):
        self.schedule = schedule
        self.base = base if base is not None else REAL_FS
        self.step_timeout = step_timeout
        self._pos = 0
        self._done: set[str] = set()
        self._free = False
        self._cond = threading.Condition()
        #: Granted calls, in order -- the realized interleaving.
        self.trace: list[str] = []

    def fs(self, label: str) -> InterleavedFS:
        return InterleavedFS(self, label, self.base)

    def _is_turn(self, label: str) -> bool:
        if self._free:
            return True
        while (self._pos < len(self.schedule)
               and self.schedule[self._pos] in self._done):
            self._pos += 1
        if self._pos >= len(self.schedule):
            self._free = True
            return True
        return self.schedule[self._pos] == label

    def _gated(self, label: str, fn, *args):
        deadline = time.monotonic() + self.step_timeout
        with self._cond:
            while not self._is_turn(label):
                if time.monotonic() >= deadline:
                    self._free = True  # fail open: a test never deadlocks
                    break
                self._cond.wait(0.005)
        try:
            return fn(*args)
        finally:
            with self._cond:
                if (not self._free and self._pos < len(self.schedule)
                        and self.schedule[self._pos] == label):
                    self._pos += 1
                self.trace.append(label)
                self._cond.notify_all()

    def run(self, writer_a, writer_b) -> tuple[object, object]:
        """Run both writers concurrently under the schedule; re-raises
        the first writer failure (A's before B's)."""
        results: dict[str, object] = {}
        errors: dict[str, BaseException] = {}

        def runner(label: str, fn) -> None:
            try:
                results[label] = fn()
            except BaseException as err:
                errors[label] = err
            finally:
                with self._cond:
                    self._done.add(label)
                    self._cond.notify_all()

        threads = [
            threading.Thread(target=runner, args=("A", writer_a)),
            threading.Thread(target=runner, args=("B", writer_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for label in ("A", "B"):
            if label in errors:
                raise errors[label]
        return results.get("A"), results.get("B")


# -- post-hoc corruptors (damage at rest) --------------------------------


def truncate_file(path: str, keep: int | None = None) -> None:
    """Cut a file down to ``keep`` bytes (default: half)."""
    with open(path, "rb") as f:
        data = f.read()
    if keep is None:
        keep = len(data) // 2
    with open(path, "wb") as f:
        f.write(data[:keep])


def bit_flip(path: str, offset: int = 0, mask: int = 0x01) -> None:
    """Flip bits at ``offset`` (negative counts from the end)."""
    with open(path, "rb") as f:
        data = bytearray(f.read())
    if not data:
        return
    data[offset] ^= mask
    with open(path, "wb") as f:
        f.write(bytes(data))


def delete_file(path: str) -> None:
    try:
        os.remove(path)
    except FileNotFoundError:
        pass


def garbage_header(path: str, data: bytes = b'{"format": 3, "nam') -> None:
    """Overwrite a header with syntactically invalid JSON."""
    with open(path, "wb") as f:
        f.write(data)


def plant_stale_lock(store_dir: str, pid: int = -1,
                     garbage: bool = False) -> str:
    """Leave a lock file behind as a dead (or torn) locker would."""
    from repro.cm.store import LOCK_NAME

    path = os.path.join(store_dir, LOCK_NAME)
    with open(path, "wb") as f:
        f.write(b"\x00torn lock" if garbage
                else json.dumps({"pid": pid}).encode())
    return path


def header_path(store_dir: str, name: str) -> str:
    """The on-disk header file of the record named ``name``."""
    from repro.cm.store import HEADER_SUFFIX, escape_name

    return os.path.join(store_dir, escape_name(name) + HEADER_SUFFIX)


def payload_path(store_dir: str, name: str) -> str:
    """The on-disk payload file of the record named ``name``."""
    from repro.cm.store import PAYLOAD_SUFFIX, escape_name

    return os.path.join(store_dir, escape_name(name) + PAYLOAD_SUFFIX)
