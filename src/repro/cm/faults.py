"""Fault injection for the bin-file store.

The store never touches the OS directly; every disk access goes through
a :class:`FileSystem` seam.  Production code uses :data:`REAL_FS`; the
fault-injection tests swap in a :class:`FaultyFS` driven by a
deterministic :class:`FaultPlan` that simulates a process dying at an
exact point of a save -- crash *before* the N-th mutating call,
optionally tearing that write in half first.  Once "dead", every later
filesystem call raises :class:`InjectedCrash` and the lock file is left
behind, exactly as a killed process would leave it.

Further fault modes ride the same seam:

- **Disk-full (ENOSPC).**  Unlike a crash, a full disk does not kill
  the process: the failing ``write_bytes`` raises ``OSError(ENOSPC)``
  and every *later* write fails too (a full disk stays full), while
  reads, renames and removes keep working (removal frees space).
  ``FaultPlan.enospc_at_write=N`` fills the disk immediately before the
  N-th payload-writing call; ``FaultPlan.byte_budget=B`` fails any
  write that would push the cumulative committed bytes past ``B``.
  ``FaultPlan.short_write_at=N`` is the *partial-disk* shape: the N-th
  write silently commits only half its bytes and reports success --
  the lie the store's checksums exist to catch.
- :class:`SlowFS` injects *latency*: calls stall, then succeed.  Slow
  is not dead -- the stale-lock breaker must leave a slow-but-live
  writer's lock alone, and lock-timeout tuning happens against this.
- :class:`TwoWriterInterleaver` serializes the filesystem calls of two
  concurrent writers according to an explicit schedule string
  (``"ABAB..."``), making concurrent-writer races *deterministic*: each
  schedule is one reproducible interleaving of, say, two merge-saves
  racing on one store.  With ``mutations_only=True`` the schedule
  advances only on *mutating* calls, so a short schedule prefix pins
  down exactly the writes that can race.  :func:`bounded_schedules`
  enumerates every schedule prefix up to a depth and
  :func:`search_schedules` drives a check over the whole space --
  bounded exhaustive schedule *search* instead of hand-picked strings.

The *network* seam gets the same treatment: the remote store backend
(:mod:`repro.cm.remote`) moves bytes through a ``send(request) ->
response`` transport object, and :class:`FaultyTransport` wraps any of
them to drop, time out, truncate or garble the N-th response (latched --
a dead cache server stays dead).  Truncation and garbling mangle the
serialized frame, so the frame codec's own CRC is what must catch them,
exactly as on a real wire.

For damage *at rest* (a disk that lies, an editor that truncated a
file), the module also provides post-hoc corruptors -- truncate,
bit-flip, delete, garbage-header -- plus helpers to locate a named
record's files inside a store directory.  :func:`fault_seed` is the
``REPRO_FAULT_SEED`` knob every randomized fault/schedule test draws
its seed from, so CI failures reproduce exactly.
"""

from __future__ import annotations

import errno
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field


class InjectedCrash(Exception):
    """Simulated process death during a filesystem operation."""


class FileSystem:
    """The store's I/O seam; this implementation is the real filesystem."""

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as f:
            return f.read()

    def write_bytes(self, path: str, data: bytes) -> None:
        with open(path, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def isdir(self, path: str) -> bool:
        return os.path.isdir(path)

    def listdir(self, path: str) -> list[str]:
        return sorted(os.listdir(path))

    def remove(self, path: str) -> None:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def create_exclusive(self, path: str, data: bytes) -> bool:
        """Create ``path`` holding ``data`` iff it does not already
        exist; the creation itself is atomic (O_CREAT | O_EXCL)."""
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        return True

    def release_lock(self, path: str) -> None:
        self.remove(path)

    def stat_signature(self, path: str) -> tuple | None:
        """A cheap change probe: ``(mtime_ns, size)`` of ``path``, or
        None when it is absent/unreadable.  Two equal signatures mean
        the file has (almost certainly) not changed; the build daemon
        uses this to refresh sources and the store incrementally
        instead of re-reading everything per request."""
        try:
            st = os.stat(path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def pid_alive(self, pid: int) -> bool:
        """Is a process with this pid running?  Non-positive and
        out-of-range pids are never alive (and never signalled)."""
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True
        except (OverflowError, ValueError):
            return False
        return True


REAL_FS = FileSystem()


@dataclass
class FaultPlan:
    """A deterministic description of how a session's filesystem fails.

    ``crash_at_mutation=N`` kills the process immediately *before* its
    N-th mutating call (0-based over writes, renames, removes and lock
    creations), so sweeping N over ``0..total`` exercises every possible
    crash point of a save.  With ``torn=True`` the fatal call, when it is
    a plain write, first leaves half of its bytes on disk -- a torn
    write.  ``lock_pid`` substitutes the pid recorded in lock files, so a
    test can simulate a lock abandoned by a dead process.

    The disk-full family (counted over ``write_bytes`` calls only,
    0-based; the process stays alive):

    - ``enospc_at_write=N``: the N-th and every later write raises
      ``OSError(ENOSPC)`` -- the disk filled up and stays full;
    - ``byte_budget=B``: a write that would push the cumulative
      committed bytes past ``B`` fails with ``OSError(ENOSPC)``, and so
      does every write after it;
    - ``short_write_at=N``: the N-th write commits only half its bytes
      and *reports success* -- a short write on a nearly-full disk.
    """

    crash_at_mutation: int | None = None
    torn: bool = False
    lock_pid: int | None = None
    enospc_at_write: int | None = None
    byte_budget: int | None = None
    short_write_at: int | None = None


class FaultyFS(FileSystem):
    """A filesystem that fails according to a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan if plan is not None else FaultPlan()
        #: Mutating calls completed so far.
        self.mutations = 0
        #: ``write_bytes`` calls attempted so far (the disk-full index).
        self.writes = 0
        #: Bytes successfully committed (the byte-budget meter).
        self.bytes_committed = 0
        #: Set once the planned crash fires; all later calls fail.
        self.dead = False
        #: Set once a disk-full fault fires; all later writes fail.
        self.disk_full = False

    def _check_alive(self) -> None:
        if self.dead:
            raise InjectedCrash("filesystem call after simulated crash")

    def _mutation(self) -> bool:
        """Account one mutating call; returns True when this call is the
        fatal one (caller decides whether to tear first)."""
        self._check_alive()
        plan = self.plan
        if (plan.crash_at_mutation is not None
                and self.mutations >= plan.crash_at_mutation):
            self.dead = True
            return True
        self.mutations += 1
        return False

    # -- reads (a dead process cannot read either) -----------------------

    def read_bytes(self, path: str) -> bytes:
        self._check_alive()
        return super().read_bytes(path)

    def listdir(self, path: str) -> list[str]:
        self._check_alive()
        return super().listdir(path)

    # -- mutations -------------------------------------------------------

    def write_bytes(self, path: str, data: bytes) -> None:
        self._check_alive()
        plan = self.plan
        index = self.writes
        self.writes += 1
        if self.disk_full or (plan.enospc_at_write is not None
                              and index >= plan.enospc_at_write):
            self.disk_full = True
            raise OSError(errno.ENOSPC,
                          f"no space left on device (injected): {path}")
        if (plan.byte_budget is not None
                and self.bytes_committed + len(data) > plan.byte_budget):
            self.disk_full = True
            raise OSError(errno.ENOSPC,
                          f"no space left on device (byte budget "
                          f"{plan.byte_budget} exhausted): {path}")
        if plan.short_write_at is not None \
                and index == plan.short_write_at and data:
            # The partial-disk lie: half the bytes land, success is
            # reported anyway.  Only checksums can catch this.
            short = data[:max(1, len(data) // 2)]
            super().write_bytes(path, short)
            self.bytes_committed += len(short)
            return
        if self._mutation():
            if plan.torn and data:
                super().write_bytes(path, data[:max(1, len(data) // 2)])
            raise InjectedCrash(f"crash during write of {path}")
        super().write_bytes(path, data)
        self.bytes_committed += len(data)

    def replace(self, src: str, dst: str) -> None:
        if self._mutation():
            raise InjectedCrash(f"crash before rename of {src}")
        super().replace(src, dst)

    def remove(self, path: str) -> None:
        if self._mutation():
            raise InjectedCrash(f"crash before remove of {path}")
        super().remove(path)

    def makedirs(self, path: str) -> None:
        self._check_alive()
        super().makedirs(path)

    def create_exclusive(self, path: str, data: bytes) -> bool:
        if self._mutation():
            raise InjectedCrash(f"crash before lock creation at {path}")
        if self.plan.lock_pid is not None:
            try:
                payload = json.loads(data)
                payload["pid"] = self.plan.lock_pid
                data = json.dumps(payload).encode()
            except ValueError:
                pass
        return super().create_exclusive(path, data)

    def release_lock(self, path: str) -> None:
        if self.dead:
            return  # a dead process never cleans up its lock
        super().release_lock(path)


# -- latency injection ---------------------------------------------------


class SlowFS(FileSystem):
    """A filesystem whose calls stall, then succeed (slow-IO, not
    failure).

    Wraps any base filesystem (so it stacks under/over :class:`FaultyFS`
    if needed).  ``write_delay`` stalls every mutating call --
    ``write_bytes``, ``replace``, ``remove``, ``create_exclusive`` --
    and ``read_delay`` every read.  ``op_log`` records the stalled calls
    so tests can assert *where* time went.
    """

    def __init__(self, base: FileSystem | None = None,
                 write_delay: float = 0.0, read_delay: float = 0.0,
                 sleep=time.sleep):
        self.base = base if base is not None else REAL_FS
        self.write_delay = write_delay
        self.read_delay = read_delay
        self._sleep = sleep
        self.op_log: list[str] = []

    def _stall(self, delay: float, op: str, path: str) -> None:
        if delay > 0:
            self.op_log.append(f"{op} {os.path.basename(path)}")
            self._sleep(delay)

    def read_bytes(self, path: str) -> bytes:
        self._stall(self.read_delay, "read_bytes", path)
        return self.base.read_bytes(path)

    def write_bytes(self, path: str, data: bytes) -> None:
        self._stall(self.write_delay, "write_bytes", path)
        self.base.write_bytes(path, data)

    def replace(self, src: str, dst: str) -> None:
        self._stall(self.write_delay, "replace", dst)
        self.base.replace(src, dst)

    def remove(self, path: str) -> None:
        self._stall(self.write_delay, "remove", path)
        self.base.remove(path)

    def create_exclusive(self, path: str, data: bytes) -> bool:
        self._stall(self.write_delay, "create_exclusive", path)
        return self.base.create_exclusive(path, data)

    def release_lock(self, path: str) -> None:
        self.base.release_lock(path)

    def exists(self, path: str) -> bool:
        return self.base.exists(path)

    def isdir(self, path: str) -> bool:
        return self.base.isdir(path)

    def listdir(self, path: str) -> list[str]:
        self._stall(self.read_delay, "listdir", path)
        return self.base.listdir(path)

    def makedirs(self, path: str) -> None:
        self.base.makedirs(path)

    def pid_alive(self, pid: int) -> bool:
        return self.base.pid_alive(pid)


# -- deterministic two-writer interleaving -------------------------------


class InterleavedFS(FileSystem):
    """One writer's view of a shared store under an interleaver: every
    gated call first waits for that writer's turn in the schedule.
    With the driver's ``mutations_only`` set, reads pass through
    ungated and only mutating calls consume schedule steps."""

    def __init__(self, driver: "TwoWriterInterleaver", label: str,
                 base: FileSystem):
        self._driver = driver
        self._label = label
        self._base = base

    def _read_gated(self, fn, *args):
        if self._driver.mutations_only:
            return fn(*args)
        return self._driver._gated(self._label, fn, *args)

    def read_bytes(self, path: str) -> bytes:
        return self._read_gated(self._base.read_bytes, path)

    def write_bytes(self, path: str, data: bytes) -> None:
        return self._driver._gated(self._label, self._base.write_bytes,
                                   path, data)

    def replace(self, src: str, dst: str) -> None:
        return self._driver._gated(self._label, self._base.replace,
                                   src, dst)

    def exists(self, path: str) -> bool:
        return self._read_gated(self._base.exists, path)

    def isdir(self, path: str) -> bool:
        return self._read_gated(self._base.isdir, path)

    def listdir(self, path: str) -> list[str]:
        return self._read_gated(self._base.listdir, path)

    def remove(self, path: str) -> None:
        return self._driver._gated(self._label, self._base.remove, path)

    def makedirs(self, path: str) -> None:
        return self._read_gated(self._base.makedirs, path)

    def create_exclusive(self, path: str, data: bytes) -> bool:
        return self._driver._gated(self._label,
                                   self._base.create_exclusive,
                                   path, data)

    def release_lock(self, path: str) -> None:
        return self._driver._gated(self._label, self._base.release_lock,
                                   path)

    def pid_alive(self, pid: int) -> bool:
        return self._base.pid_alive(pid)


class TwoWriterInterleaver:
    """Drive two writers' filesystem calls in an exact order.

    ``schedule`` is a string over the writer labels (``"ABABAB"``,
    ``"AABB..."``): the k-th granted filesystem call must come from the
    writer the k-th character names.  Entries for a writer that already
    finished are skipped; when the schedule is exhausted (or a writer
    stalls past ``step_timeout`` -- e.g. it is blocked on the other's
    store lock while the schedule still names it) the gate falls open
    and both writers free-run to completion.  Given a schedule and two
    deterministic writers, the resulting on-disk interleaving is fully
    reproducible.

    With ``mutations_only=True`` only *mutating* calls (writes,
    renames, removes, lock creations/releases) consume schedule steps;
    reads run ungated.  A schedule character then names exactly one
    store mutation point, so a short schedule prefix is a complete
    description of which writes raced -- the granularity
    :func:`search_schedules` explores exhaustively.

    Use :meth:`fs` to get each writer's gated filesystem, then
    :meth:`run` to execute both concurrently.
    """

    def __init__(self, schedule: str, base: FileSystem | None = None,
                 step_timeout: float = 10.0,
                 mutations_only: bool = False):
        self.schedule = schedule
        self.base = base if base is not None else REAL_FS
        self.step_timeout = step_timeout
        self.mutations_only = mutations_only
        self._pos = 0
        self._done: set[str] = set()
        self._free = False
        self._cond = threading.Condition()
        #: Granted calls, in order -- the realized interleaving.
        self.trace: list[str] = []

    def fs(self, label: str) -> InterleavedFS:
        return InterleavedFS(self, label, self.base)

    def _is_turn(self, label: str) -> bool:
        if self._free:
            return True
        while (self._pos < len(self.schedule)
               and self.schedule[self._pos] in self._done):
            self._pos += 1
        if self._pos >= len(self.schedule):
            self._free = True
            return True
        return self.schedule[self._pos] == label

    def _gated(self, label: str, fn, *args):
        deadline = time.monotonic() + self.step_timeout
        with self._cond:
            while not self._is_turn(label):
                if time.monotonic() >= deadline:
                    self._free = True  # fail open: a test never deadlocks
                    break
                self._cond.wait(0.005)
        try:
            return fn(*args)
        finally:
            with self._cond:
                if (not self._free and self._pos < len(self.schedule)
                        and self.schedule[self._pos] == label):
                    self._pos += 1
                self.trace.append(label)
                self._cond.notify_all()

    def run(self, writer_a, writer_b) -> tuple[object, object]:
        """Run both writers concurrently under the schedule; re-raises
        the first writer failure (A's before B's)."""
        results: dict[str, object] = {}
        errors: dict[str, BaseException] = {}

        def runner(label: str, fn) -> None:
            try:
                results[label] = fn()
            except BaseException as err:
                errors[label] = err
            finally:
                with self._cond:
                    self._done.add(label)
                    self._cond.notify_all()

        threads = [
            threading.Thread(target=runner, args=("A", writer_a)),
            threading.Thread(target=runner, args=("B", writer_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for label in ("A", "B"):
            if label in errors:
                raise errors[label]
        return results.get("A"), results.get("B")


# -- bounded exhaustive schedule search ----------------------------------
#
# TwoWriterInterleaver makes one interleaving reproducible; these
# helpers explore the *space* of interleavings.  A schedule string is a
# prefix: the first len(schedule) granted calls follow it exactly, then
# both writers free-run.  Enumerating every prefix of depth K therefore
# covers every way the first K (mutation-point) calls can interleave --
# bounded exhaustive search in the model-checking sense, with the
# convergence check run after every explored schedule.


def bounded_schedules(depth: int, labels: str = "AB"):
    """Every schedule prefix of length ``depth`` over ``labels``
    (``len(labels) ** depth`` strings, lexicographic order)."""
    for chars in itertools.product(labels, repeat=depth):
        yield "".join(chars)


def sampled_schedules(depth: int, count: int, seed: int | None = None,
                      labels: str = "AB"):
    """``count`` random schedule prefixes of length ``depth`` --
    the sampling fallback when ``len(labels) ** depth`` is too big to
    exhaust.  Seeded via :func:`fault_seed` unless given."""
    import random

    rng = random.Random(fault_seed() if seed is None else seed)
    for _ in range(count):
        yield "".join(rng.choice(labels) for _ in range(depth))


@dataclass
class ScheduleFailure:
    """One explored schedule whose check did not hold."""

    schedule: str
    error: str


@dataclass
class ScheduleSearchReport:
    """What a :func:`search_schedules` exploration covered and found."""

    explored: int = 0
    #: Distinct *realized* interleavings (the driver's granted-call
    #: traces): the state count of the explored schedule space.
    realized: set = field(default_factory=set)
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def states(self) -> int:
        return len(self.realized)

    def summary(self) -> str:
        verdict = "all converged" if self.ok else \
            f"{len(self.failures)} FAILED"
        return (f"schedule search: {self.explored} schedule(s) explored, "
                f"{self.states} distinct interleaving(s), {verdict}")


def search_schedules(schedules, run_one,
                     check=None) -> ScheduleSearchReport:
    """Run ``run_one(schedule) -> TwoWriterInterleaver`` for every
    schedule, then ``check(schedule, driver)`` (assertions welcome);
    any exception is recorded as a :class:`ScheduleFailure` rather than
    aborting the sweep, so one report covers the whole space."""
    report = ScheduleSearchReport()
    for schedule in schedules:
        report.explored += 1
        try:
            driver = run_one(schedule)
            if driver is not None:
                report.realized.add("".join(driver.trace))
            if check is not None:
                check(schedule, driver)
        except Exception as err:
            report.failures.append(ScheduleFailure(
                schedule, f"{type(err).__name__}: {err}"))
    return report


def fault_seed(default: int = 0) -> int:
    """The ``REPRO_FAULT_SEED`` environment knob: one integer seed for
    every randomized fault/schedule test, so a CI failure reproduces
    with ``REPRO_FAULT_SEED=<n> pytest ...``."""
    try:
        return int(os.environ.get("REPRO_FAULT_SEED", default))
    except ValueError:
        return default


# -- the network seam ----------------------------------------------------


class TransportError(Exception):
    """A remote-store request failed at the transport layer: the
    connection dropped, the response frame was truncated, or its
    integrity check failed.  The remote backend converts every one of
    these into *offline-and-local-miss* -- a build never sees this
    exception (see :mod:`repro.cm.remote`)."""


class TransportTimeout(TransportError):
    """A remote-store request exceeded its deadline."""


@dataclass
class TransportPlan:
    """A deterministic network fault: break the ``fault_at``-th response
    (1-based) in ``mode`` -- and, latched, every response after it, the
    way a dead cache server stays dead.

    Modes:

    - ``"drop"``: the connection dies (:class:`TransportError`);
    - ``"timeout"``: the request hangs past its deadline
      (:class:`TransportTimeout`);
    - ``"truncate"``: the response comes back cut in half (the frame
      codec's integrity check turns this into :class:`TransportError`);
    - ``"garble"``: the response arrives bit-flipped (ditto).
    """

    fault_at: int = 0  # 0 = never fault
    mode: str = "drop"


class FaultyTransport:
    """Wraps a transport and injects :class:`TransportPlan` faults on
    the response path.  Byte-level: truncation and garbling mangle the
    serialized response frame, so the *frame codec's* CRC -- not the
    store's record checksums -- is what must catch them, exactly as on
    a real wire."""

    def __init__(self, inner, plan: TransportPlan | None = None):
        self.inner = inner
        self.plan = plan if plan is not None else TransportPlan()
        self.responses = 0
        self.faults_fired = 0

    def send(self, request: bytes) -> bytes:
        response = self.inner.send(request)
        self.responses += 1
        plan = self.plan
        if not plan.fault_at or self.responses < plan.fault_at:
            return response
        self.faults_fired += 1  # latched: the Nth and every one after
        if plan.mode == "drop":
            raise TransportError(
                f"injected connection drop on response {self.responses}")
        if plan.mode == "timeout":
            raise TransportTimeout(
                f"injected timeout on response {self.responses}")
        if plan.mode == "truncate":
            return response[:max(1, len(response) // 2)]
        if plan.mode == "garble":
            mangled = bytearray(response)
            for i in range(0, len(mangled), 37):
                mangled[i] ^= 0x5A
            return bytes(mangled)
        raise ValueError(f"unknown transport fault mode {plan.mode!r}")

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()


# -- post-hoc corruptors (damage at rest) --------------------------------


def truncate_file(path: str, keep: int | None = None) -> None:
    """Cut a file down to ``keep`` bytes (default: half)."""
    with open(path, "rb") as f:
        data = f.read()
    if keep is None:
        keep = len(data) // 2
    with open(path, "wb") as f:
        f.write(data[:keep])


def bit_flip(path: str, offset: int = 0, mask: int = 0x01) -> None:
    """Flip bits at ``offset`` (negative counts from the end)."""
    with open(path, "rb") as f:
        data = bytearray(f.read())
    if not data:
        return
    data[offset] ^= mask
    with open(path, "wb") as f:
        f.write(bytes(data))


def delete_file(path: str) -> None:
    try:
        os.remove(path)
    except FileNotFoundError:
        pass


def garbage_header(path: str, data: bytes = b'{"format": 3, "nam') -> None:
    """Overwrite a header with syntactically invalid JSON."""
    with open(path, "wb") as f:
        f.write(data)


def plant_stale_lock(store_dir: str, pid: int = -1,
                     garbage: bool = False) -> str:
    """Leave a lock file behind as a dead (or torn) locker would."""
    from repro.cm.store import LOCK_NAME

    path = os.path.join(store_dir, LOCK_NAME)
    with open(path, "wb") as f:
        f.write(b"\x00torn lock" if garbage
                else json.dumps({"pid": pid}).encode())
    return path


def _record_dir(store_dir: str, name: str) -> str:
    """The directory the record named ``name`` lives in: layout-aware,
    so corruptors damage the right file in flat *and* sharded stores."""
    from repro.cm.backend import SHARDS_DIR, escape_name, shard_of

    shard_dir = os.path.join(store_dir, SHARDS_DIR,
                             shard_of(escape_name(name)))
    if os.path.isdir(os.path.join(store_dir, SHARDS_DIR)):
        return shard_dir
    return store_dir


def header_path(store_dir: str, name: str) -> str:
    """The on-disk header file of the record named ``name``."""
    from repro.cm.store import HEADER_SUFFIX, escape_name

    return os.path.join(_record_dir(store_dir, name),
                        escape_name(name) + HEADER_SUFFIX)


def payload_path(store_dir: str, name: str) -> str:
    """The on-disk payload file of the record named ``name``."""
    from repro.cm.store import PAYLOAD_SUFFIX, escape_name

    return os.path.join(_record_dir(store_dir, name),
                        escape_name(name) + PAYLOAD_SUFFIX)
