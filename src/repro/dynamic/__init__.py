"""Dynamic semantics: runtime values and the evaluator.

In the paper's model a compiled unit's ``code`` is machine code taking a
vector of imported values to a vector of exported values.  Our "machine
code" is the elaborated AST, and "running" it is tree-walking evaluation;
the import/export vector discipline is enforced one level up, in
:mod:`repro.units`.
"""

from repro.dynamic.values import (
    Char,
    DynEnv,
    Ref,
    SMLRaise,
    VCon,
    VExn,
    VStruct,
    Word,
    format_value,
)
from repro.dynamic.evaluate import eval_decs, eval_exp

__all__ = [
    "Char",
    "Word",
    "Ref",
    "VCon",
    "VExn",
    "VStruct",
    "DynEnv",
    "SMLRaise",
    "format_value",
    "eval_decs",
    "eval_exp",
]
