"""The evaluator: dynamic semantics over the elaborated AST.

Evaluation requires the AST to have been elaborated (constructor
annotations set); evaluating an un-elaborated AST raises AssertionError
on the first ambiguous name.
"""

from __future__ import annotations

import sys

from repro.dynamic.builtins import EXN_BIND, EXN_MATCH, raise_sml

# A tree-walking interpreter spends several Python frames per SML call;
# CPython >= 3.11 heap-allocates frames, so a high recursion limit is
# safe and lets SML programs recurse ~15k deep (genuinely runaway
# recursion still surfaces as RecursionError, reported by the REPL as a
# stack overflow).
if sys.getrecursionlimit() < 120_000:
    sys.setrecursionlimit(120_000)
from repro.dynamic.values import (
    Char,
    ClauseClosure,
    Closure,
    ConFun,
    DynEnv,
    ExnCon,
    Prim,
    SMLRaise,
    VCon,
    VExn,
    VFunctor,
    VStruct,
    Word,
)
from repro.lang import ast


def eval_decs(decs: list[ast.Dec], env: DynEnv) -> None:
    """Evaluate declarations, binding their names into ``env``'s frame.

    Each declaration is evaluated in a fresh frame chained over its
    predecessors, so closures capture the bindings *as of their own
    declaration* -- a later rebinding of ``f`` must not change what an
    earlier closure sees (static scoping).

    The chain is anchored *past* ``env``'s own (empty) frame, so that the
    final merge of all bindings into ``env`` -- the caller's export
    record -- cannot retroactively shadow imported names inside closures.
    """
    anchor = DynEnv(parent=env.parent) if env.is_empty_frame() else env
    current: DynEnv = anchor
    frames: list[DynEnv] = []
    for dec in decs:
        current = current.child()
        eval_dec(dec, current)
        frames.append(current)
    for frame in frames:  # oldest first: later bindings win
        env.values.update(frame.values)
        env.structures.update(frame.structures)
        env.functors.update(frame.functors)


def eval_exp(exp: ast.Exp, env: DynEnv):
    return _EXP_EVAL[type(exp)](exp, env)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def _ev_int(exp: ast.IntExp, env):
    return exp.value


def _ev_word(exp: ast.WordExp, env):
    return Word(exp.value)


def _ev_real(exp: ast.RealExp, env):
    return exp.value


def _ev_string(exp: ast.StringExp, env):
    return exp.value


def _ev_char(exp: ast.CharExp, env):
    return Char(exp.value)


def _ev_var(exp: ast.VarExp, env: DynEnv):
    info = exp.info
    if isinstance(info, ast.ConInfo):
        if info.is_exn:
            con = env.lookup_value_path(exp.path)
            assert isinstance(con, ExnCon), exp.path
            return con if con.has_arg else VExn(con)
        return _con_value(info)
    value = env.lookup_value_path(exp.path)
    if value is None:
        raise AssertionError(f"dynamic unbound {ast.path_str(exp.path)} "
                             f"(line {exp.line})")
    return value


def _con_value(info: ast.ConInfo):
    if info.name == "true":
        return True
    if info.name == "false":
        return False
    if info.has_arg:
        return ConFun(info.name)
    return VCon(info.name)


def _ev_selector(exp: ast.SelectorExp, env):
    label = exp.label
    return Prim(f"#{label}", lambda v: _field(v, label))


def _field(value, label: str):
    if isinstance(value, tuple):
        return value[int(label) - 1]
    return value[label]


def _ev_tuple(exp: ast.TupleExp, env):
    return tuple(eval_exp(e, env) for e in exp.parts)


def _ev_record(exp: ast.RecordExp, env):
    fields = {label: eval_exp(e, env) for label, e in exp.fields}
    if _is_tuple_record(fields):
        return tuple(fields[str(i + 1)] for i in range(len(fields)))
    return fields


def _is_tuple_record(fields: dict) -> bool:
    return len(fields) > 0 and all(
        label.isdigit() for label in fields
    ) and sorted(int(label) for label in fields) == list(
        range(1, len(fields) + 1))


def _ev_list(exp: ast.ListExp, env):
    out = VCon("nil")
    for e in reversed(exp.parts):
        out = VCon("::", (eval_exp(e, env), out))
    return out


def _ev_seq(exp: ast.SeqExp, env):
    value = ()
    for e in exp.parts:
        value = eval_exp(e, env)
    return value


def _ev_app(exp: ast.AppExp, env):
    fn = eval_exp(exp.fn, env)
    arg = eval_exp(exp.arg, env)
    return apply_value(fn, arg)


def apply_value(fn, arg):
    """Apply a function value to an argument value."""
    while True:
        if isinstance(fn, Prim):
            return fn.fn(arg)
        if isinstance(fn, Closure):
            for pat, body in fn.rules:
                bindings: dict[str, object] = {}
                if match_pat(pat, arg, bindings, fn.env):
                    frame = fn.env.child()
                    frame.values.update(bindings)
                    return eval_exp(body, frame)
            raise_sml(EXN_MATCH)
        if isinstance(fn, ClauseClosure):
            collected = fn.collected + (arg,)
            if len(collected) < fn.arity:
                return ClauseClosure(fn.name, fn.clauses, fn.arity, fn.env,
                                     collected)
            return _apply_clauses(fn, collected)
        if isinstance(fn, ConFun):
            return VCon(fn.name, arg)
        if isinstance(fn, ExnCon):
            return VExn(fn, arg)
        raise AssertionError(f"application of non-function {fn!r}")


def _apply_clauses(fn: ClauseClosure, args: tuple):
    for clause in fn.clauses:
        bindings: dict[str, object] = {}
        if all(
            match_pat(pat, arg, bindings, fn.env)
            for pat, arg in zip(clause.pats, args)
        ):
            frame = fn.env.child()
            frame.values.update(bindings)
            return eval_exp(clause.body, frame)
    raise_sml(EXN_MATCH)


def _ev_fn(exp: ast.FnExp, env):
    return Closure(exp.rules, env)


def _ev_let(exp: ast.LetExp, env):
    frame = env.child()
    eval_decs(exp.decs, frame)
    return eval_exp(exp.body, frame)


def _ev_if(exp: ast.IfExp, env):
    if eval_exp(exp.cond, env):
        return eval_exp(exp.then, env)
    return eval_exp(exp.els, env)


def _ev_case(exp: ast.CaseExp, env):
    value = eval_exp(exp.scrutinee, env)
    for pat, body in exp.rules:
        bindings: dict[str, object] = {}
        if match_pat(pat, value, bindings, env):
            frame = env.child()
            frame.values.update(bindings)
            return eval_exp(body, frame)
    raise_sml(EXN_MATCH)


def _ev_andalso(exp: ast.AndalsoExp, env):
    return bool(eval_exp(exp.left, env)) and bool(eval_exp(exp.right, env))


def _ev_orelse(exp: ast.OrelseExp, env):
    return bool(eval_exp(exp.left, env)) or bool(eval_exp(exp.right, env))


def _ev_while(exp: ast.WhileExp, env):
    while eval_exp(exp.cond, env):
        eval_exp(exp.body, env)
    return ()


def _ev_raise(exp: ast.RaiseExp, env):
    packet = eval_exp(exp.exn, env)
    assert isinstance(packet, VExn), packet
    raise SMLRaise(packet)


def _ev_handle(exp: ast.HandleExp, env):
    try:
        return eval_exp(exp.body, env)
    except SMLRaise as raised:
        for pat, body in exp.rules:
            bindings: dict[str, object] = {}
            if match_pat(pat, raised.packet, bindings, env):
                frame = env.child()
                frame.values.update(bindings)
                return eval_exp(body, frame)
        raise


def _ev_typed(exp: ast.TypedExp, env):
    return eval_exp(exp.exp, env)


_EXP_EVAL = {
    ast.IntExp: _ev_int,
    ast.WordExp: _ev_word,
    ast.RealExp: _ev_real,
    ast.StringExp: _ev_string,
    ast.CharExp: _ev_char,
    ast.VarExp: _ev_var,
    ast.SelectorExp: _ev_selector,
    ast.TupleExp: _ev_tuple,
    ast.RecordExp: _ev_record,
    ast.ListExp: _ev_list,
    ast.SeqExp: _ev_seq,
    ast.AppExp: _ev_app,
    ast.FnExp: _ev_fn,
    ast.LetExp: _ev_let,
    ast.IfExp: _ev_if,
    ast.CaseExp: _ev_case,
    ast.AndalsoExp: _ev_andalso,
    ast.OrelseExp: _ev_orelse,
    ast.WhileExp: _ev_while,
    ast.RaiseExp: _ev_raise,
    ast.HandleExp: _ev_handle,
    ast.TypedExp: _ev_typed,
}


# ---------------------------------------------------------------------------
# Pattern matching
# ---------------------------------------------------------------------------


def match_pat(pat: ast.Pat, value, out: dict, env: DynEnv) -> bool:
    """Try to match ``value``; on success the bindings are in ``out``.

    ``env`` resolves exception-constructor patterns to their generative
    identities at match time.
    """
    if isinstance(pat, ast.WildPat):
        return True
    if isinstance(pat, ast.VarPat):
        info = pat.info
        if isinstance(info, ast.ConInfo):
            return _match_con(info, (pat.name,), None, value, out, env)
        out[pat.name] = value
        return True
    if isinstance(pat, ast.ConstPat):
        if pat.kind == "char":
            return isinstance(value, Char) and value.ch == pat.value
        if pat.kind == "word":
            return isinstance(value, Word) and value.bits == pat.value
        return value == pat.value
    if isinstance(pat, ast.ConPat):
        info = pat.info
        assert isinstance(info, ast.ConInfo), pat
        return _match_con(info, pat.path, pat.arg, value, out, env)
    if isinstance(pat, ast.TuplePat):
        if not pat.parts:
            return True  # unit
        assert isinstance(value, tuple), value
        return all(
            match_pat(p, v, out, env) for p, v in zip(pat.parts, value))
    if isinstance(pat, ast.RecordPat):
        for label, p in pat.fields:
            if not match_pat(p, _field(value, label), out, env):
                return False
        return True
    if isinstance(pat, ast.ListPat):
        node = value
        for p in pat.parts:
            if not (isinstance(node, VCon) and node.name == "::"):
                return False
            head, node = node.arg
            if not match_pat(p, head, out, env):
                return False
        return isinstance(node, VCon) and node.name == "nil"
    if isinstance(pat, ast.AsPat):
        out[pat.name] = value
        return match_pat(pat.pat, value, out, env)
    if isinstance(pat, ast.TypedPat):
        return match_pat(pat.pat, value, out, env)
    raise AssertionError(f"unknown pattern {pat!r}")


def _match_con(info: ast.ConInfo, path, arg_pat, value, out: dict,
               env: DynEnv) -> bool:
    if info.is_exn:
        con = env.lookup_value_path(path)
        assert isinstance(con, ExnCon), path
        if not (isinstance(value, VExn) and value.con.exn_id == con.exn_id):
            return False
        if arg_pat is None:
            return True
        return match_pat(arg_pat, value.arg, out, env)
    if info.name == "true" or info.name == "false":
        return value is (info.name == "true")
    if info.name == "ref":
        from repro.dynamic.values import Ref

        assert isinstance(value, Ref), value
        return match_pat(arg_pat, value.value, out, env)
    if not (isinstance(value, VCon) and value.name == info.name):
        return False
    if arg_pat is None:
        return True
    return match_pat(arg_pat, value.arg, out, env)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


def eval_dec(dec: ast.Dec, env: DynEnv) -> None:
    handler = _DEC_EVAL.get(type(dec))
    if handler is None:
        raise AssertionError(f"unknown declaration {dec!r}")
    handler(dec, env)


def _ev_val_dec(dec: ast.ValDec, env: DynEnv) -> None:
    for pat, exp in dec.bindings:
        value = eval_exp(exp, env)
        bindings: dict[str, object] = {}
        if not match_pat(pat, value, bindings, env):
            raise_sml(EXN_BIND)
        env.values.update(bindings)


def _ev_val_rec_dec(dec: ast.ValRecDec, env: DynEnv) -> None:
    frame = env.child()
    for name, fn in dec.bindings:
        frame.values[name] = Closure(fn.rules, frame)
    env.values.update(frame.values)


def _ev_fun_dec(dec: ast.FunDec, env: DynEnv) -> None:
    frame = env.child()
    for clauses in dec.functions:
        name = clauses[0].name
        arity = len(clauses[0].pats)
        frame.values[name] = ClauseClosure(name, clauses, arity, frame)
    env.values.update(frame.values)


def _ev_type_dec(dec, env) -> None:
    pass


def _ev_datatype_dec(dec: ast.DatatypeDec, env: DynEnv) -> None:
    for _tyvars, _name, conbinds in dec.bindings:
        for conbind in conbinds:
            if conbind.arg_ty is None:
                env.values[conbind.name] = VCon(conbind.name)
            else:
                env.values[conbind.name] = ConFun(conbind.name)


def _ev_datatype_repl_dec(dec: ast.DatatypeReplDec, env: DynEnv) -> None:
    # Replication re-exposes the original constructors; their dynamic
    # values are name-indexed, so look them up through the path's
    # structure when qualified.
    if len(dec.path) == 1:
        return  # constructors are already in scope
    struct = env.lookup_structure_path(dec.path[:-1])
    if struct is None:
        return
    for name, value in struct.values.items():
        if isinstance(value, (VCon, ConFun)) or value is True or value is False:
            env.values.setdefault(name, value)


def _ev_abstype_dec(dec: ast.AbstypeDec, env: DynEnv) -> None:
    frame = env.child()
    for _tyvars, _name, conbinds in dec.bindings:
        for conbind in conbinds:
            if conbind.arg_ty is None:
                frame.values[conbind.name] = VCon(conbind.name)
            else:
                frame.values[conbind.name] = ConFun(conbind.name)
    inner = frame.child()
    eval_decs(dec.body, inner)
    env.values.update(inner.values)
    env.structures.update(inner.structures)
    env.functors.update(inner.functors)


def _ev_exception_dec(dec: ast.ExceptionDec, env: DynEnv) -> None:
    for name, arg_ty, alias in dec.bindings:
        if alias is not None:
            con = env.lookup_value_path(alias)
            assert isinstance(con, ExnCon), alias
            env.values[name] = con
        else:
            env.values[name] = ExnCon(name, has_arg=arg_ty is not None)


def _ev_local_dec(dec: ast.LocalDec, env: DynEnv) -> None:
    private = env.child()
    eval_decs(dec.private, private)
    public = private.child()
    eval_decs(dec.public, public)
    env.values.update(public.values)
    env.structures.update(public.structures)
    env.functors.update(public.functors)


def _ev_open_dec(dec: ast.OpenDec, env: DynEnv) -> None:
    for path in dec.paths:
        struct = env.lookup_structure_path(path)
        assert struct is not None, path
        env.absorb_struct(struct)


def _ev_fixity_dec(dec, env) -> None:
    pass


def _ev_structure_dec(dec: ast.StructureDec, env: DynEnv) -> None:
    for binding in dec.bindings:
        struct = eval_strexp(binding.body, env, binding.name)
        env.structures[binding.name] = struct


def _ev_signature_dec(dec, env) -> None:
    pass


def _ev_functor_dec(dec: ast.FunctorDec, env: DynEnv) -> None:
    for binding in dec.bindings:
        env.functors[binding.name] = VFunctor(
            binding.name, binding.param_name, binding.body, env)


_DEC_EVAL = {
    ast.ValDec: _ev_val_dec,
    ast.ValRecDec: _ev_val_rec_dec,
    ast.FunDec: _ev_fun_dec,
    ast.TypeDec: _ev_type_dec,
    ast.DatatypeDec: _ev_datatype_dec,
    ast.DatatypeReplDec: _ev_datatype_repl_dec,
    ast.AbstypeDec: _ev_abstype_dec,
    ast.ExceptionDec: _ev_exception_dec,
    ast.LocalDec: _ev_local_dec,
    ast.OpenDec: _ev_open_dec,
    ast.FixityDec: _ev_fixity_dec,
    ast.StructureDec: _ev_structure_dec,
    ast.SignatureDec: _ev_signature_dec,
    ast.FunctorDec: _ev_functor_dec,
}


# ---------------------------------------------------------------------------
# Structure expressions
# ---------------------------------------------------------------------------


def eval_strexp(strexp: ast.StrExp, env: DynEnv, name: str = "?") -> VStruct:
    if isinstance(strexp, ast.StructStrExp):
        frame = env.child()
        eval_decs(strexp.decs, frame)
        return frame.as_struct(name)
    if isinstance(strexp, ast.VarStrExp):
        struct = env.lookup_structure_path(strexp.path)
        assert struct is not None, strexp.path
        return struct
    if isinstance(strexp, ast.AppStrExp):
        path = strexp.functor_path
        functor = _lookup_functor_value(env, path)
        assert functor is not None, path
        if strexp.info == "functor":
            # Higher-order application: the argument names a functor.
            arg = _lookup_functor_value(env, strexp.arg.path)
            assert arg is not None, strexp.arg.path
            return apply_functor_value(functor, arg, name)
        arg = eval_strexp(strexp.arg, env, name=f"{name}$arg")
        return apply_functor_value(functor, arg, name)
    if isinstance(strexp, ast.LetStrExp):
        frame = env.child()
        eval_decs(strexp.decs, frame)
        return eval_strexp(strexp.body, frame, name)
    if isinstance(strexp, ast.ConstraintStrExp):
        # Ascription has no dynamic effect in this model (static checking
        # already restricted what clients may reference).
        return eval_strexp(strexp.body, env, name)
    raise AssertionError(f"unknown structure expression {strexp!r}")


def _lookup_functor_value(env: DynEnv, path) -> VFunctor | None:
    if len(path) == 1:
        return env.lookup_functor(path[0])
    owner = env.lookup_structure_path(path[:-1])
    return owner.functors.get(path[-1]) if owner else None


def apply_functor_value(functor: VFunctor, arg,
                        name: str = "?") -> VStruct:
    frame = functor.env.child()
    if isinstance(arg, VFunctor):
        frame.functors[functor.param_name] = arg
    else:
        frame.structures[functor.param_name] = arg
    return eval_strexp(functor.body, frame, name)
