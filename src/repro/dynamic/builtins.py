"""Dynamic meanings of the primitives declared in
:mod:`repro.semant.prim`.

The primitive exceptions are module-level singletons so that every unit
in a session raises and handles *the same* ``Div``, ``Fail`` and friends.
"""

from __future__ import annotations

from repro.dynamic.values import (
    Array,
    Char,
    DynEnv,
    ExnCon,
    Prim,
    Ref,
    SMLRaise,
    VCon,
    Vector,
    VExn,
    Word,
    python_list,
    sml_list,
)

# -- primitive exceptions ----------------------------------------------------

EXN_FAIL = ExnCon("Fail", has_arg=True)
EXN_DIV = ExnCon("Div", has_arg=False)
EXN_OVERFLOW = ExnCon("Overflow", has_arg=False)
EXN_SUBSCRIPT = ExnCon("Subscript", has_arg=False)
EXN_SIZE = ExnCon("Size", has_arg=False)
EXN_CHR = ExnCon("Chr", has_arg=False)
EXN_DOMAIN = ExnCon("Domain", has_arg=False)
EXN_MATCH = ExnCon("Match", has_arg=False)
EXN_BIND = ExnCon("Bind", has_arg=False)
EXN_EMPTY = ExnCon("Empty", has_arg=False)
EXN_OPTION = ExnCon("Option", has_arg=False)

PRIM_EXN_VALUES = {
    "Fail": EXN_FAIL,
    "Div": EXN_DIV,
    "Overflow": EXN_OVERFLOW,
    "Subscript": EXN_SUBSCRIPT,
    "Size": EXN_SIZE,
    "Chr": EXN_CHR,
    "Domain": EXN_DOMAIN,
    "Match": EXN_MATCH,
    "Bind": EXN_BIND,
    "Empty": EXN_EMPTY,
    "Option": EXN_OPTION,
}


def raise_sml(con: ExnCon, arg=None):
    raise SMLRaise(VExn(con, arg))


def _arith(op):
    """Overloaded binary arithmetic: int/real direct, word on bits."""

    def run(pair):
        a, b = pair
        if isinstance(a, Word):
            return Word(op(a.bits, b.bits) & _WORD_MASK)
        return op(a, b)

    return run


def _compare_op(op):
    """Overloaded comparison: int/real/string direct, char/word unboxed."""

    def run(pair):
        a, b = pair
        if isinstance(a, Char):
            return op(a.ch, b.ch)
        if isinstance(a, Word):
            return op(a.bits, b.bits)
        return op(a, b)

    return run


def _div(pair):
    a, b = pair
    if isinstance(a, Word):
        if b.bits == 0:
            raise_sml(EXN_DIV)
        return Word(a.bits // b.bits)
    if b == 0:
        raise_sml(EXN_DIV)
    return a // b


def _mod(pair):
    a, b = pair
    if isinstance(a, Word):
        if b.bits == 0:
            raise_sml(EXN_DIV)
        return Word(a.bits % b.bits)
    if b == 0:
        raise_sml(EXN_DIV)
    return a % b


def _quot(pair):
    a, b = pair
    if b == 0:
        raise_sml(EXN_DIV)
    return int(a / b)  # truncate toward zero


def _rem(pair):
    a, b = pair
    if b == 0:
        raise_sml(EXN_DIV)
    return a - b * int(a / b)


def _real_div(pair):
    a, b = pair
    if b == 0.0:
        raise_sml(EXN_DIV)
    return a / b


def _sml_equal(a, b) -> bool:
    """Polymorphic (structural) equality; refs and arrays compare by
    identity."""
    if isinstance(a, Ref) or isinstance(b, Ref):
        return a is b
    if isinstance(a, Array) or isinstance(b, Array):
        return a is b
    if isinstance(a, Vector) and isinstance(b, Vector):
        return len(a.items) == len(b.items) and all(
            _sml_equal(x, y) for x, y in zip(a.items, b.items))
    if isinstance(a, VCon) and isinstance(b, VCon):
        if a.name != b.name:
            return False
        if a.arg is None or b.arg is None:
            return a.arg is None and b.arg is None
        return _sml_equal(a.arg, b.arg)
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            _sml_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _sml_equal(a[k], b[k]) for k in a)
    return a == b


def _substring(triple):
    s, start, length = triple
    if start < 0 or length < 0 or start + length > len(s):
        raise_sml(EXN_SUBSCRIPT)
    return s[start:start + length]


def _chr(code):
    if code < 0 or code > 255:
        raise_sml(EXN_CHR)
    return Char(chr(code))


def _string_sub(pair):
    s, i = pair
    if i < 0 or i >= len(s):
        raise_sml(EXN_SUBSCRIPT)
    return Char(s[i])


def _int_from_string(s):
    text = s.strip().replace("~", "-")
    try:
        return VCon("SOME", int(text))
    except ValueError:
        return VCon("nil") if False else VCon("NONE")


def _compare(a, b) -> VCon:
    if a < b:
        return VCon("LESS")
    if a > b:
        return VCon("GREATER")
    return VCon("EQUAL")


def _real_to_string(x: float) -> str:
    return repr(x).replace("-", "~")


def _sqrt(x: float) -> float:
    if x < 0:
        raise_sml(EXN_DOMAIN)
    return x ** 0.5


def make_print(sink) -> Prim:
    return Prim("print", lambda s: (sink(s), ())[1])


#: name -> python implementation, for every primitive in
#: ``prim.PRIM_VAL_TYPES`` and ``prim.PRIM_HIDDEN_TYPES``.
def primitive_impls(print_sink=None) -> dict[str, Prim]:
    sink = print_sink if print_sink is not None else _default_sink

    impls = {
        # Overloaded arithmetic: dispatch on the runtime representation
        # (int/float direct, Word via its bit field).
        "+": _arith(lambda a, b: a + b),
        "-": _arith(lambda a, b: a - b),
        "*": _arith(lambda a, b: a * b),
        "div": _div,
        "mod": _mod,
        "/": _real_div,
        "~": lambda n: -n,
        "abs": abs,
        "<": _compare_op(lambda a, b: a < b),
        "<=": _compare_op(lambda a, b: a <= b),
        ">": _compare_op(lambda a, b: a > b),
        ">=": _compare_op(lambda a, b: a >= b),
        "=": lambda p: _sml_equal(p[0], p[1]),
        "<>": lambda p: not _sml_equal(p[0], p[1]),
        "^": lambda p: p[0] + p[1],
        "size": len,
        "str": lambda c: c.ch,
        "chr": _chr,
        "ord": lambda c: ord(c.ch),
        "substring": _substring,
        "implode": lambda lst: "".join(c.ch for c in python_list(lst)),
        "explode": lambda s: sml_list(Char(c) for c in s),
        "concat": lambda lst: "".join(python_list(lst)),
        "ref": Ref,
        "!": lambda r: r.value,
        ":=": lambda p: (setattr(p[0], "value", p[1]), ())[1],
        "print": lambda s: (sink(s), ())[1],
        "ignore": lambda _v: (),
        "exnName": lambda e: e.con.name,
        "Int.toString": lambda n: str(n) if n >= 0 else "~" + str(-n),
        "Int.fromString": _int_from_string,
        "Int.compare": lambda p: _compare(p[0], p[1]),
        "Int.min": lambda p: min(p),
        "Int.max": lambda p: max(p),
        "Int.quot": _quot,
        "Int.rem": _rem,
        "Real.+": lambda p: p[0] + p[1],
        "Real.-": lambda p: p[0] - p[1],
        "Real.*": lambda p: p[0] * p[1],
        "Real./": _real_div,
        "Real.~": lambda x: -x,
        "Real.<": lambda p: p[0] < p[1],
        "Real.<=": lambda p: p[0] <= p[1],
        "Real.>": lambda p: p[0] > p[1],
        "Real.>=": lambda p: p[0] >= p[1],
        "Real.==": lambda p: p[0] == p[1],
        "Real.fromInt": float,
        "Real.floor": lambda x: int(x // 1),
        "Real.ceil": lambda x: int(-((-x) // 1)),
        "Real.round": lambda x: round(x),
        "Real.trunc": int,
        "Real.toString": _real_to_string,
        "Real.sqrt": _sqrt,
        "String.<": lambda p: p[0] < p[1],
        "String.<=": lambda p: p[0] <= p[1],
        "String.>": lambda p: p[0] > p[1],
        "String.>=": lambda p: p[0] >= p[1],
        "String.compare": lambda p: _compare(p[0], p[1]),
        "String.sub": _string_sub,
        "Char.<": lambda p: p[0].ch < p[1].ch,
        "Char.<=": lambda p: p[0].ch <= p[1].ch,
        "Char.compare": lambda p: _compare(p[0].ch, p[1].ch),
        "Word.+": lambda p: Word((p[0].bits + p[1].bits) & _WORD_MASK),
        "Word.-": lambda p: Word((p[0].bits - p[1].bits) & _WORD_MASK),
        "Word.*": lambda p: Word((p[0].bits * p[1].bits) & _WORD_MASK),
        "Word.andb": lambda p: Word(p[0].bits & p[1].bits),
        "Word.orb": lambda p: Word(p[0].bits | p[1].bits),
        "Word.xorb": lambda p: Word(p[0].bits ^ p[1].bits),
        "Word.toInt": lambda w: w.bits,
        "Word.fromInt": lambda n: Word(n & _WORD_MASK),
        "Vector.fromList": lambda lst: Vector(python_list(lst)),
        "Vector.toList": lambda v: sml_list(v.items),
        "Vector.tabulate": _vector_tabulate,
        "Vector.length": lambda v: len(v.items),
        "Vector.sub": _vector_sub,
        "Vector.concat": lambda lst: Vector(
            x for v in python_list(lst) for x in v.items),
        "Vector.map": lambda f: Prim(
            "Vector.map'", lambda v: Vector(_apply(f, x)
                                            for x in v.items)),
        "Vector.foldl": _vector_foldl,
        "Array.array": _array_make,
        "Array.fromList": lambda lst: Array(python_list(lst)),
        "Array.tabulate": _array_tabulate,
        "Array.length": lambda a: len(a.items),
        "Array.sub": _array_sub,
        "Array.update": _array_update,
        "Array.vector": lambda a: Vector(a.items),
    }
    return {name: Prim(name, fn) for name, fn in impls.items()}


def _apply(fn, arg):
    from repro.dynamic.evaluate import apply_value

    return apply_value(fn, arg)


def _vector_tabulate(pair):
    n, fn = pair
    if n < 0:
        raise_sml(EXN_SIZE)
    return Vector(_apply(fn, i) for i in range(n))


def _vector_sub(pair):
    v, i = pair
    if i < 0 or i >= len(v.items):
        raise_sml(EXN_SUBSCRIPT)
    return v.items[i]


def _vector_foldl(fn):
    def with_base(base):
        def run(v):
            acc = base
            for x in v.items:
                acc = _apply(fn, (x, acc))
            return acc

        return Prim("Vector.foldl''", run)

    return Prim("Vector.foldl'", with_base)


def _array_make(pair):
    n, init = pair
    if n < 0:
        raise_sml(EXN_SIZE)
    return Array([init] * n)


def _array_tabulate(pair):
    n, fn = pair
    if n < 0:
        raise_sml(EXN_SIZE)
    return Array([_apply(fn, i) for i in range(n)])


def _array_sub(pair):
    a, i = pair
    if i < 0 or i >= len(a.items):
        raise_sml(EXN_SUBSCRIPT)
    return a.items[i]


def _array_update(triple):
    a, i, value = triple
    if i < 0 or i >= len(a.items):
        raise_sml(EXN_SUBSCRIPT)
    a.items[i] = value
    return ()


_WORD_MASK = (1 << 31) - 1


def _default_sink(text: str) -> None:
    print(text, end="")


def primitive_dynenv(print_sink=None) -> DynEnv:
    """The dynamic environment matching
    :func:`repro.semant.prim.primitive_static_env`."""
    from repro.dynamic.values import VStruct

    env = DynEnv()
    impls = primitive_impls(print_sink)
    structures: dict[str, VStruct] = {}
    for dotted, prim in impls.items():
        if "." in dotted:
            struct_name, member = dotted.split(".", 1)
            struct = structures.setdefault(struct_name, VStruct(struct_name))
            struct.values[member] = prim
        else:
            env.values[dotted] = prim
    env.structures.update(structures)
    for name, con in PRIM_EXN_VALUES.items():
        env.values[name] = con
    env.values.update(pervasive_constructor_values())
    return env


def pervasive_constructor_values() -> dict[str, object]:
    """Dynamic bindings of the pervasive data constructors."""
    from repro.dynamic.values import ConFun

    return {
        "true": True,
        "false": False,
        "nil": VCon("nil"),
        "::": ConFun("::"),
        "NONE": VCon("NONE"),
        "SOME": ConFun("SOME"),
        "LESS": VCon("LESS"),
        "EQUAL": VCon("EQUAL"),
        "GREATER": VCon("GREATER"),
    }
