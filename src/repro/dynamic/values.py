"""Runtime value representation.

Mapping from SML types to Python values:

==============  =============================================
int             ``int``
real            ``float``
string          ``str``
char            :class:`Char`
word            :class:`Word`
bool            ``bool``
tuples          ``tuple``
records         ``dict[label, value]``
datatypes       :class:`VCon` (``true``/``false`` are ``bool``)
functions       :class:`Closure` / :class:`ClauseClosure` /
                :class:`Prim` / :class:`ConFun` / :class:`ExnCon`
refs            :class:`Ref`
exceptions      :class:`VExn` values, :class:`ExnCon` constructors
structures      :class:`VStruct`
functors        :class:`VFunctor`
==============  =============================================
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True)
class Char:
    """A character value (distinct from length-1 strings)."""

    ch: str


@dataclass(frozen=True)
class Word:
    """An unsigned word value."""

    bits: int


class Ref:
    """A mutable reference cell."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self) -> str:
        return f"ref {format_value(self.value)}"


class Vector:
    """An immutable vector value (wrapper keeps it distinct from SML
    tuples, which are Python tuples)."""

    __slots__ = ("items",)

    def __init__(self, items):
        self.items = tuple(items)

    def __eq__(self, other) -> bool:
        return isinstance(other, Vector) and self.items == other.items

    def __hash__(self):
        return hash(self.items)

    def __repr__(self) -> str:
        return format_value(self)


class Array:
    """A mutable array value; equality is by identity, like ``ref``."""

    __slots__ = ("items",)

    def __init__(self, items):
        self.items = list(items)

    def __repr__(self) -> str:
        return format_value(self)


class VCon:
    """An applied (or nullary) datatype constructor value."""

    __slots__ = ("name", "arg")

    def __init__(self, name: str, arg=None):
        self.name = name
        self.arg = arg

    def __eq__(self, other) -> bool:
        return (isinstance(other, VCon) and self.name == other.name
                and self.arg == other.arg)

    def __hash__(self):
        return hash((self.name,))

    def __repr__(self) -> str:
        return format_value(self)


class ConFun:
    """A unary data constructor used as a function value."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"<con {self.name}>"


_EXN_IDS = itertools.count(1)


class ExnCon:
    """An exception constructor value.

    Exception declarations are *generative*: evaluating ``exception E``
    twice yields two ExnCons with distinct ids, and handlers match by id.
    """

    __slots__ = ("exn_id", "name", "has_arg")

    def __init__(self, name: str, has_arg: bool):
        self.exn_id = next(_EXN_IDS)
        self.name = name
        self.has_arg = has_arg

    def __repr__(self) -> str:
        return f"<exn {self.name}#{self.exn_id}>"


class VExn:
    """An exception value (packet)."""

    __slots__ = ("con", "arg")

    def __init__(self, con: ExnCon, arg=None):
        self.con = con
        self.arg = arg

    def __repr__(self) -> str:
        if self.con.has_arg:
            return f"{self.con.name}({format_value(self.arg)})"
        return self.con.name


class SMLRaise(Exception):
    """Python carrier for a raised SML exception."""

    def __init__(self, packet: VExn):
        self.packet = packet
        super().__init__(repr(packet))


class Closure:
    """A ``fn``-expression closure."""

    __slots__ = ("rules", "env")

    def __init__(self, rules, env: "DynEnv"):
        self.rules = rules
        self.env = env

    def __repr__(self) -> str:
        return "fn"


class ClauseClosure:
    """A ``fun``-declaration closure: curried, clausal.

    Collects ``arity`` arguments, then tries each clause in order.
    """

    __slots__ = ("name", "clauses", "arity", "env", "collected")

    def __init__(self, name: str, clauses, arity: int, env: "DynEnv",
                 collected: tuple = ()):
        self.name = name
        self.clauses = clauses
        self.arity = arity
        self.env = env
        self.collected = collected

    def __repr__(self) -> str:
        return f"fn<{self.name}>"


class Prim:
    """A primitive (builtin) function."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn):
        self.name = name
        self.fn = fn

    def __repr__(self) -> str:
        return f"<prim {self.name}>"


class VStruct:
    """A structure value: its exported dynamic bindings."""

    __slots__ = ("name", "values", "structures", "functors")

    def __init__(self, name: str, values: dict | None = None,
                 structures: dict | None = None,
                 functors: dict | None = None):
        self.name = name
        self.values = values if values is not None else {}
        self.structures = structures if structures is not None else {}
        self.functors = functors if functors is not None else {}

    def __repr__(self) -> str:
        return f"<structure {self.name}>"


class VFunctor:
    """A functor value: closure over its definition environment."""

    __slots__ = ("name", "param_name", "body", "env")

    def __init__(self, name: str, param_name: str, body, env: "DynEnv"):
        self.name = name
        self.param_name = param_name
        self.body = body
        self.env = env

    def __repr__(self) -> str:
        return f"<functor {self.name}>"


class DynEnv:
    """A dynamic environment frame (values / structures / functors),
    chained to a parent like the static :class:`repro.semant.env.Env`."""

    __slots__ = ("values", "structures", "functors", "parent")

    def __init__(self, parent: "DynEnv | None" = None):
        self.values: dict[str, object] = {}
        self.structures: dict[str, VStruct] = {}
        self.functors: dict[str, VFunctor] = {}
        self.parent = parent

    def child(self) -> "DynEnv":
        return DynEnv(self)

    def _lookup(self, namespace: str, name: str):
        env: DynEnv | None = self
        while env is not None:
            table = getattr(env, namespace)
            if name in table:
                return table[name]
            env = env.parent
        return None

    def lookup_value(self, name: str):
        return self._lookup("values", name)

    def lookup_structure(self, name: str) -> VStruct | None:
        return self._lookup("structures", name)

    def lookup_functor(self, name: str) -> VFunctor | None:
        return self._lookup("functors", name)

    def lookup_structure_path(self, path) -> VStruct | None:
        struct = self.lookup_structure(path[0])
        for name in path[1:]:
            if struct is None:
                return None
            struct = struct.structures.get(name)
        return struct

    def lookup_value_path(self, path):
        if len(path) == 1:
            return self.lookup_value(path[0])
        struct = self.lookup_structure_path(path[:-1])
        if struct is None:
            return None
        return struct.values.get(path[-1])

    def is_empty_frame(self) -> bool:
        return not (self.values or self.structures or self.functors)

    def absorb_struct(self, struct: VStruct) -> None:
        """``open``: splice a structure's bindings into this frame."""
        self.values.update(struct.values)
        self.structures.update(struct.structures)
        self.functors.update(struct.functors)

    def as_struct(self, name: str) -> VStruct:
        """Package this frame's own bindings as a structure value."""
        return VStruct(name, dict(self.values), dict(self.structures),
                       dict(self.functors))


def sml_list(values) -> VCon:
    """Build an SML list value from a Python iterable."""
    out = VCon("nil")
    for v in reversed(list(values)):
        out = VCon("::", (v, out))
    return out


def python_list(value: VCon) -> list:
    """Flatten an SML list value into a Python list."""
    out = []
    while isinstance(value, VCon) and value.name == "::":
        head, value = value.arg
        out.append(head)
    return out


def format_value(value) -> str:
    """Render a value the way an SML top level would."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value) if value >= 0 else "~" + str(-value)
    if isinstance(value, float):
        text = repr(value).replace("-", "~")
        return text
    if isinstance(value, str):
        return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'
    if isinstance(value, Char):
        return f'#"{value.ch}"'
    if isinstance(value, Word):
        return f"0wx{value.bits:x}"
    if isinstance(value, tuple):
        return "(" + ", ".join(format_value(v) for v in value) + ")"
    if isinstance(value, dict):
        inner = ", ".join(
            f"{label}={format_value(v)}" for label, v in sorted(value.items()))
        return "{" + inner + "}"
    if isinstance(value, VCon):
        if value.name in ("::", "nil"):
            items = python_list(value)
            return "[" + ", ".join(format_value(v) for v in items) + "]"
        if value.arg is None:
            return value.name
        return f"{value.name} {format_value(value.arg)}"
    if isinstance(value, Ref):
        return f"ref {format_value(value.value)}"
    if isinstance(value, Vector):
        inner = ", ".join(format_value(v) for v in value.items)
        return f"#[{inner}]"
    if isinstance(value, Array):
        inner = ", ".join(format_value(v) for v in value.items)
        return f"[|{inner}|]"
    if isinstance(value, VExn):
        return repr(value)
    if isinstance(value, (Closure, ClauseClosure, Prim, ConFun)):
        return "fn"
    return repr(value)
