"""Intrinsic pids: hashing exported static environments (§5).

The paper's algorithm:

1. Traverse the exported static environment in a canonical (prefix)
   order.
2. Alpha-convert: internal stamps are replaced by provisional pids
   1..n in traversal order, so the hash is independent of which session
   minted the stamps.
3. External entities are rendered as (owning unit's pid, export index).
4. CRC-128 the resulting byte stream; the digest is the unit's pid.

Our canonical serialization is the dehydrater itself run in
line-normalizing mode (so editing comments -- which only shifts line
numbers -- cannot change a pid), with the memo numbering of the shared
pickler playing the role of the provisional pids.  As the paper notes
wryly ("Look how many passes we are taking over the export
environments!"), hashing and dehydration are separate passes; sharing the
traversal code keeps them consistent by construction.
"""

from __future__ import annotations

from repro.pickle.pickler import Pickler
from repro.pids.crc128 import CRC128
from repro.semant.env import Env

#: The namespaces a separately compiled unit may export (the paper's
#: footnote 4); per-binding pids cover exactly these.
_BINDING_NAMESPACES = ("structures", "signatures", "functors")


def intrinsic_pid(
    export_env: Env,
    local_stamp_ids,
    extern=None,
    context_env_ids=frozenset(),
    seed: str = "",
) -> str:
    """The intrinsic pid (32 hex digits) of an exported environment.

    ``seed`` is mixed in first; the unit pipeline passes the unit's name
    so that two textually identical units get distinct pids.  (Their
    exported datatypes are distinct *generative* types, and the
    (pid, index) stub namespace must keep them apart.)
    """
    pickler = Pickler(
        local_stamp_ids=local_stamp_ids,
        extern=extern,
        context_env_ids=context_env_ids,
        normalize_lines=True,
    )
    data = pickler.run(export_env)
    crc = CRC128()
    if seed:
        crc.update(seed.encode("utf-8"))
    return crc.update(data).hexdigest()


def binding_pids(
    export_env: Env,
    local_stamp_ids,
    extern=None,
    context_env_ids=frozenset(),
    seed: str = "",
) -> dict[str, str]:
    """Per-binding intrinsic pids: the interface *slice* hashes.

    One pid per exported module-level binding, keyed ``"ns:name"``
    (the :func:`repro.analysis.scopes.binding_key` format).  Each is a
    CRC-128 over just that binding's canonical (alpha-converted,
    line-normalized) dehydration, so a binding's pid moves exactly when
    *its* interface slice changes -- edits to sibling bindings are
    invisible.  The seed mixes in the unit name *and* the binding key,
    for the same generativity reason :func:`intrinsic_pid` seeds with
    the unit name: two textually identical bindings in different slots
    are distinct entities.

    Each binding gets its own pickler run, so its memo numbering (the
    provisional pids of the alpha-conversion) restarts per binding and
    the pid is independent of where the binding sits in the interface:
    reordering declarations cannot change any binding pid.
    """
    out: dict[str, str] = {}
    for ns in _BINDING_NAMESPACES:
        for name in sorted(getattr(export_env, ns)):
            obj = getattr(export_env, ns)[name]
            pickler = Pickler(
                local_stamp_ids=local_stamp_ids,
                extern=extern,
                context_env_ids=context_env_ids,
                normalize_lines=True,
            )
            data = pickler.run(obj)
            crc = CRC128()
            crc.update(f"{seed}\x00{ns}:{name}\x00".encode("utf-8"))
            out[f"{ns}:{name}"] = crc.update(data).hexdigest()
    return out


def interface_digest(pids: dict[str, str]) -> str:
    """The whole-interface digest over sorted binding pids.

    This is the slice-level counterpart of :func:`intrinsic_pid`: it
    changes iff some binding's pid changed (or a binding appeared or
    disappeared), so ``interface_digest(binding_pids(...))`` stable
    implies the whole-pid cutoff test would also pass.  Property tests
    hold the two views together.
    """
    crc = CRC128()
    for key in sorted(pids):
        crc.update(f"{key}={pids[key]}\n".encode("utf-8"))
    return crc.hexdigest()
