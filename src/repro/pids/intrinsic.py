"""Intrinsic pids: hashing exported static environments (§5).

The paper's algorithm:

1. Traverse the exported static environment in a canonical (prefix)
   order.
2. Alpha-convert: internal stamps are replaced by provisional pids
   1..n in traversal order, so the hash is independent of which session
   minted the stamps.
3. External entities are rendered as (owning unit's pid, export index).
4. CRC-128 the resulting byte stream; the digest is the unit's pid.

Our canonical serialization is the dehydrater itself run in
line-normalizing mode (so editing comments -- which only shifts line
numbers -- cannot change a pid), with the memo numbering of the shared
pickler playing the role of the provisional pids.  As the paper notes
wryly ("Look how many passes we are taking over the export
environments!"), hashing and dehydration are separate passes; sharing the
traversal code keeps them consistent by construction.
"""

from __future__ import annotations

from repro.pickle.pickler import Pickler
from repro.pids.crc128 import CRC128
from repro.semant.env import Env


def intrinsic_pid(
    export_env: Env,
    local_stamp_ids,
    extern=None,
    context_env_ids=frozenset(),
    seed: str = "",
) -> str:
    """The intrinsic pid (32 hex digits) of an exported environment.

    ``seed`` is mixed in first; the unit pipeline passes the unit's name
    so that two textually identical units get distinct pids.  (Their
    exported datatypes are distinct *generative* types, and the
    (pid, index) stub namespace must keep them apart.)
    """
    pickler = Pickler(
        local_stamp_ids=local_stamp_ids,
        extern=extern,
        context_env_ids=context_env_ids,
        normalize_lines=True,
    )
    data = pickler.run(export_env)
    crc = CRC128()
    if seed:
        crc.update(seed.encode("utf-8"))
    return crc.update(data).hexdigest()
