"""Persistent identifiers (pids).

A pid names an exported interface.  The paper (§5) considers three
choices -- timestamps, source hashes, and *intrinsic* pids (a hash of the
exported static environment itself) -- and argues for intrinsic pids
because they are independent of when or where the module was compiled and
insensitive to changes that do not affect the interface.  This package
implements the 128-bit CRC the paper uses and the canonical,
alpha-converted serialization of static environments it is applied to.
"""

from repro.pids.crc128 import CRC128, crc128_hex
from repro.pids.intrinsic import binding_pids, interface_digest, intrinsic_pid

__all__ = ["CRC128", "binding_pids", "crc128_hex", "interface_digest",
           "intrinsic_pid"]
