"""A 128-bit cyclic redundancy check, implemented from scratch.

The paper (§5): "we use a good hash function (a CRC of 128 bits) ...
With 2^13 pids there are about 2^26 pairs of pids, so the probability of
any collision occurring is about 2^-102."

This is polynomial division over GF(2) with a degree-128 primitive-style
reducing polynomial, processed byte-at-a-time through a precomputed
256-entry table.  Python's arbitrary-precision integers hold the 128-bit
register directly.
"""

from __future__ import annotations

#: Low 128 bits of the reducing polynomial (the x^128 term is implicit).
#: This is the polynomial of CRC-128 as used in some RFC-3385-era
#: proposals; any dense irreducible-ish polynomial serves the paper's
#: purpose equally.
POLY = 0x883DDFE55BB7172889F7F0A1F7FC0537

_MASK128 = (1 << 128) - 1
_TOPBIT = 1 << 127


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        register = byte << 120
        for _ in range(8):
            if register & _TOPBIT:
                register = ((register << 1) ^ POLY) & _MASK128
            else:
                register = (register << 1) & _MASK128
        table.append(register)
    return table


_TABLE = _build_table()


class CRC128:
    """Incremental 128-bit CRC over a byte stream."""

    __slots__ = ("_register", "_length")

    def __init__(self, init: int = _MASK128):
        self._register = init & _MASK128
        self._length = 0

    def update(self, data: bytes) -> "CRC128":
        register = self._register
        for byte in data:
            top = (register >> 120) & 0xFF
            register = ((register << 8) & _MASK128) ^ _TABLE[top ^ byte]
        self._register = register
        self._length += len(data)
        return self

    def digest_int(self) -> int:
        # Fold the length in so streams that are prefixes of each other
        # do not collide trivially.
        register = self._register
        for byte in self._length.to_bytes(8, "big"):
            top = (register >> 120) & 0xFF
            register = ((register << 8) & _MASK128) ^ _TABLE[top ^ byte]
        return register

    def digest(self) -> bytes:
        return self.digest_int().to_bytes(16, "big")

    def hexdigest(self) -> str:
        return self.digest().hex()


def crc128_hex(data: bytes) -> str:
    """One-shot convenience: the 32-hex-digit CRC of ``data``."""
    return CRC128().update(data).hexdigest()


def collision_probability(n_pids: int) -> float:
    """The paper's birthday-bound estimate: probability that any pair of
    ``n_pids`` random 128-bit values collides (~ n^2 / 2^129)."""
    pairs = n_pids * (n_pids - 1) / 2
    return pairs / float(1 << 128)
