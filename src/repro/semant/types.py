"""Semantic types, type constructors and data constructors.

Conventions:

- Unification variables (:class:`TyVar`) are mutable; everything else is
  conceptually immutable once elaboration of its defining declaration
  finishes.
- Type schemes are :class:`PolyType` with de-Bruijn-indexed
  :class:`BoundVar` occurrences in the body; monomorphic bindings are bare
  types.
- Tuples are records with numeric labels "1".."n", following the
  Definition of Standard ML.
- Type abbreviations (:class:`TypeFun`) are expanded at elaboration time,
  so a :class:`ConType` always applies a *generative* or primitive tycon.
"""

from __future__ import annotations

import itertools

from repro.semant.stamps import Stamp


class Type:
    """Base class of semantic types."""

    __slots__ = ()


class TyVar(Type):
    """A unification variable.

    Attributes:
        link: the type this variable has been unified with, or None.
        level: let-nesting level at creation, for generalization.
        eq: True when the variable must be instantiated to an equality type.
        id: serial number for printing.
    """

    __slots__ = ("link", "level", "eq", "id")

    _ids = itertools.count(1)

    def __init__(self, level: int, eq: bool = False):
        self.link: Type | None = None
        self.level = level
        self.eq = eq
        self.id = next(TyVar._ids)

    def __repr__(self) -> str:
        prefix = "''" if self.eq else "'"
        return f"{prefix}a{self.id}" if self.link is None else repr(self.link)


class OverloadVar(TyVar):
    """A unification variable restricted to an overloading class.

    The Definition overloads the arithmetic and comparison operators over
    a fixed set of base types, defaulting to ``int`` when the context
    does not determine one.  An OverloadVar unifies only with members of
    ``candidates``; :meth:`repro.elab.core.Elaborator.generalize` resolves
    any survivor to ``default``.
    """

    __slots__ = ("candidates", "default")

    def __init__(self, level: int, candidates: tuple, default):
        super().__init__(level)
        self.candidates = candidates
        self.default = default

    def __repr__(self) -> str:
        if self.link is not None:
            return repr(self.link)
        names = "/".join(t.name for t in self.candidates)
        return f"'{{{names}}}{self.id}"


class OverloadScheme(Type):
    """The type scheme of an overloaded operator: ``body`` quantifies one
    :class:`BoundVar` ranging over ``candidates``."""

    __slots__ = ("body", "candidates", "default")

    def __init__(self, body: Type, candidates: tuple, default):
        self.body = body
        self.candidates = candidates
        self.default = default

    def __repr__(self) -> str:
        names = "/".join(t.name for t in self.candidates)
        return f"overloaded[{names}]. {self.body!r}"


class FlexRecord(Type):
    """A partially-known record type, from ``{x, ...}`` patterns and
    ``#label`` selectors.

    Behaves like a unification variable constrained to be a record having
    at least the given fields.  It must be resolved (linked to a full
    :class:`RecordType`) by the end of the enclosing declaration.
    """

    __slots__ = ("fields", "link", "level", "id")

    def __init__(self, fields: dict, level: int):
        self.fields: dict[str, Type] = fields
        self.link: Type | None = None
        self.level = level
        self.id = next(TyVar._ids)

    def __repr__(self) -> str:
        if self.link is not None:
            return repr(self.link)
        inner = ", ".join(f"{label}: {ty!r}" for label, ty in
                          sorted(self.fields.items()))
        return "{" + inner + ", ...}"


class BoundVar(Type):
    """A quantified variable inside a :class:`PolyType` body."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __repr__(self) -> str:
        return f"'b{self.index}"


class ConType(Type):
    """Application of a type constructor: ``(args) tycon``."""

    __slots__ = ("tycon", "args")

    def __init__(self, tycon: "Tycon", args: tuple[Type, ...] = ()):
        assert len(args) == tycon.arity, (tycon.name, len(args), tycon.arity)
        self.tycon = tycon
        self.args = tuple(args)

    def __repr__(self) -> str:
        if not self.args:
            return self.tycon.name
        inner = ", ".join(map(repr, self.args))
        return f"({inner}) {self.tycon.name}"


class RecordType(Type):
    """A record type with sorted labels; tuples use labels "1".."n"."""

    __slots__ = ("fields",)

    def __init__(self, fields: tuple[tuple[str, Type], ...]):
        self.fields = tuple(sorted(fields, key=lambda f: _label_key(f[0])))

    def labels(self) -> tuple[str, ...]:
        return tuple(label for label, _ in self.fields)

    def is_tuple(self) -> bool:
        return self.labels() == tuple(str(i + 1) for i in range(len(self.fields)))

    def __repr__(self) -> str:
        if not self.fields:
            return "unit"
        if self.is_tuple():
            return "(" + " * ".join(repr(t) for _, t in self.fields) + ")"
        inner = ", ".join(f"{label}: {ty!r}" for label, ty in self.fields)
        return "{" + inner + "}"


class FunType(Type):
    __slots__ = ("dom", "rng")

    def __init__(self, dom: Type, rng: Type):
        self.dom = dom
        self.rng = rng

    def __repr__(self) -> str:
        return f"({self.dom!r} -> {self.rng!r})"


class PolyType(Type):
    """A type scheme: ``forall 'a1..'an . body``.

    ``eqflags[i]`` is True when the i-th quantified variable must range
    over equality types (a ``''a`` variable).
    """

    __slots__ = ("arity", "body", "eqflags")

    def __init__(self, arity: int, body: Type, eqflags: tuple[bool, ...] = ()):
        self.arity = arity
        self.body = body
        self.eqflags = eqflags or tuple([False] * arity)

    def __repr__(self) -> str:
        return f"forall^{self.arity}. {self.body!r}"


def _label_key(label: str):
    """Numeric labels sort numerically so tuples stay in order."""
    return (0, int(label), "") if label.isdigit() else (1, 0, label)


def tuple_type(parts: list[Type] | tuple[Type, ...]) -> RecordType:
    return RecordType(tuple((str(i + 1), t) for i, t in enumerate(parts)))


#: The unit type is the empty record.
def unit_type() -> RecordType:
    return RecordType(())


def prune(ty: Type) -> Type:
    """Follow unification links to the representative type (with path
    compression)."""
    if isinstance(ty, (TyVar, FlexRecord)) and ty.link is not None:
        ty.link = prune(ty.link)
        return ty.link
    return ty


# ---------------------------------------------------------------------------
# Type constructors
# ---------------------------------------------------------------------------


class Tycon:
    """Base class of type constructors appearing in :class:`ConType`."""

    __slots__ = ()

    name: str
    arity: int

    def admits_equality(self) -> bool:
        raise NotImplementedError


class PrimTycon(Tycon):
    """A primitive tycon of the initial basis (int, real, ref, ...).

    Identity is by object; the basis constructs each exactly once.
    ``eq`` may be True/False, or the string "always" for ``ref``, whose
    applications admit equality regardless of the argument.
    """

    __slots__ = ("name", "arity", "eq")

    def __init__(self, name: str, arity: int, eq):
        self.name = name
        self.arity = arity
        self.eq = eq

    def admits_equality(self) -> bool:
        return bool(self.eq)

    def __repr__(self) -> str:
        return f"<prim {self.name}/{self.arity}>"


class DatatypeTycon(Tycon):
    """A generative datatype constructor.

    The constructor list is filled in after creation (datatypes are
    recursive), making the semantic-object graph cyclic -- which the
    pickler must, and does, support.
    """

    __slots__ = ("stamp", "name", "arity", "constructors", "eq")

    def __init__(self, stamp: Stamp, name: str, arity: int):
        self.stamp = stamp
        self.name = name
        self.arity = arity
        self.constructors: list[Constructor] = []
        self.eq = True  # refined by compute_datatype_equality

    def admits_equality(self) -> bool:
        return self.eq

    def __repr__(self) -> str:
        return f"<datatype {self.name}/{self.arity} {self.stamp!r}>"


class AbstractTycon(Tycon):
    """An opaque tycon: from an opaque ascription or an unrealized spec."""

    __slots__ = ("stamp", "name", "arity", "eq")

    def __init__(self, stamp: Stamp, name: str, arity: int, eq: bool = False):
        self.stamp = stamp
        self.name = name
        self.arity = arity
        self.eq = eq

    def admits_equality(self) -> bool:
        return self.eq

    def __repr__(self) -> str:
        return f"<abstype {self.name}/{self.arity} {self.stamp!r}>"


class TypeFun:
    """A type abbreviation: ``type ('a1..'an) t = body``.

    Never appears inside a :class:`ConType`; environment lookups expand it
    by substitution (:func:`apply_typefun`).
    """

    __slots__ = ("arity", "body", "name")

    def __init__(self, arity: int, body: Type, name: str = "?"):
        self.arity = arity
        self.body = body
        self.name = name

    def __repr__(self) -> str:
        return f"<typefun {self.name}/{self.arity} = {self.body!r}>"


class Constructor:
    """A data (or exception) constructor.

    Attributes:
        name: source name.
        tycon: the owning datatype tycon (None for exception constructors).
        scheme: the constructor's type scheme as a *value*.
        has_arg: whether the constructor takes an argument.
        is_exn: True for exception constructors.
    """

    __slots__ = ("name", "tycon", "scheme", "has_arg", "is_exn")

    def __init__(self, name: str, tycon: DatatypeTycon | None, scheme: Type,
                 has_arg: bool, is_exn: bool = False):
        self.name = name
        self.tycon = tycon
        self.scheme = scheme
        self.has_arg = has_arg
        self.is_exn = is_exn

    def __repr__(self) -> str:
        kind = "exn" if self.is_exn else "con"
        return f"<{kind} {self.name}>"


# ---------------------------------------------------------------------------
# Substitution and instantiation
# ---------------------------------------------------------------------------


def subst_bound(ty: Type, args: tuple[Type, ...]) -> Type:
    """Replace :class:`BoundVar` occurrences by the given types."""
    ty = prune(ty)
    if isinstance(ty, BoundVar):
        return args[ty.index]
    if isinstance(ty, ConType):
        return ConType(ty.tycon, tuple(subst_bound(a, args) for a in ty.args))
    if isinstance(ty, RecordType):
        return RecordType(
            tuple((label, subst_bound(t, args)) for label, t in ty.fields)
        )
    if isinstance(ty, FunType):
        return FunType(subst_bound(ty.dom, args), subst_bound(ty.rng, args))
    return ty


def apply_typefun(fun: TypeFun, args: tuple[Type, ...]) -> Type:
    assert len(args) == fun.arity, (fun.name, len(args), fun.arity)
    return subst_bound(fun.body, args)


def instantiate(scheme: Type, level: int) -> Type:
    """Instantiate a scheme with fresh unification variables at ``level``."""
    if isinstance(scheme, OverloadScheme):
        var = OverloadVar(level, scheme.candidates, scheme.default)
        return subst_bound(scheme.body, (var,))
    if isinstance(scheme, PolyType):
        fresh = tuple(
            TyVar(level, eq=scheme.eqflags[i]) for i in range(scheme.arity)
        )
        return subst_bound(scheme.body, fresh)
    return scheme


# ---------------------------------------------------------------------------
# Equality-type admission
# ---------------------------------------------------------------------------


def force_equality(ty: Type) -> bool:
    """Check that ``ty`` admits equality, coercing free type variables to
    equality variables as a side effect.  Returns False when impossible
    (functions, ``real``, non-eq abstract types)."""
    ty = prune(ty)
    if isinstance(ty, TyVar):
        ty.eq = True
        return True
    if isinstance(ty, BoundVar):
        return True  # governed by the scheme's eqflags
    if isinstance(ty, FunType):
        return False
    if isinstance(ty, FlexRecord):
        return all(force_equality(t) for t in ty.fields.values())
    if isinstance(ty, RecordType):
        return all(force_equality(t) for _, t in ty.fields)
    if isinstance(ty, ConType):
        if isinstance(ty.tycon, PrimTycon) and ty.tycon.eq == "always":
            return True  # 'a ref / 'a array admit equality regardless
        if not ty.tycon.admits_equality():
            return False
        return all(force_equality(a) for a in ty.args)
    return False


def compute_datatype_equality(tycons: list[DatatypeTycon]) -> None:
    """Fixpoint computation of the ``eq`` attribute for a recursive bundle
    of datatypes: a datatype admits equality iff all constructor argument
    types do, assuming type parameters and bundle members do."""
    for tc in tycons:
        tc.eq = True
    changed = True
    while changed:
        changed = False
        for tc in tycons:
            if not tc.eq:
                continue
            for con in tc.constructors:
                if not con.has_arg:
                    continue
                arg = _con_arg_type(con)
                if arg is not None and not _admits_eq_structural(arg):
                    tc.eq = False
                    changed = True
                    break


def _con_arg_type(con: Constructor) -> Type | None:
    scheme = con.scheme
    body = scheme.body if isinstance(scheme, PolyType) else scheme
    body = prune(body)
    if isinstance(body, FunType):
        return body.dom
    return None


def _admits_eq_structural(ty: Type) -> bool:
    """Equality admission for the datatype fixpoint: bound vars count as
    eq (the datatype is eq *when its parameters are*)."""
    ty = prune(ty)
    if isinstance(ty, (TyVar, BoundVar)):
        return True
    if isinstance(ty, FunType):
        return False
    if isinstance(ty, RecordType):
        return all(_admits_eq_structural(t) for _, t in ty.fields)
    if isinstance(ty, ConType):
        if isinstance(ty.tycon, PrimTycon) and ty.tycon.eq == "always":
            return True
        if not ty.tycon.admits_equality():
            return False
        return all(_admits_eq_structural(a) for a in ty.args)
    return False
