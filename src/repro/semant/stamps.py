"""Stamps: per-session unique identifiers for generative semantic objects.

Section 4 of the paper: "Every 'significant' object (module, signature,
structure or type constructor) has its own 'stamp', and the exported
environment will contain both a stamp and a persistent identifier (pid)."

Stamps give object identity that survives pickling: the dehydrater keys
external references on (defining unit's pid, the object's export index),
and the rehydrater finds the live object by looking the stamp up in a
stamp-indexed context environment.

Stamps are deliberately *not* globally persistent -- two sessions
elaborating the same source produce different stamp numbers.  That is
exactly why intrinsic pids (:mod:`repro.pids.intrinsic`) alpha-convert
stamps before hashing.
"""

from __future__ import annotations

import itertools


class Stamp:
    """A unique identity token.

    Identity is by object; ``id`` is a monotone integer used only for
    printing, ordering and as a dictionary key.
    """

    __slots__ = ("id",)

    def __init__(self, id: int):
        self.id = id

    def __repr__(self) -> str:
        return f"<stamp {self.id}>"

    def __hash__(self) -> int:
        return self.id

    def __eq__(self, other: object) -> bool:
        return self is other


class StampGenerator:
    """Issues fresh stamps; one per session (or per test, for isolation)."""

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)

    def fresh(self) -> Stamp:
        return Stamp(next(self._counter))


#: The default session-wide generator.  All stamps in one Python process
#: are drawn from this counter unless a caller explicitly injects its own
#: generator *and* guarantees the resulting ids never meet (the pickler
#: and the stamp index key objects by id, so ids must be unique within a
#: session).
_DEFAULT = StampGenerator()


def default_generator() -> StampGenerator:
    return _DEFAULT


def fresh_stamp() -> Stamp:
    """Issue a stamp from the session-wide generator."""
    return _DEFAULT.fresh()
