"""Semantic objects: stamps, types, environments, and module objects.

These are the "static environment" values of the paper -- the things that
compilation produces, that bin files pickle (dehydrate), and that intrinsic
pids hash.  SML/NJ's equivalents span 36 datatypes with 115 variants
(section 4 of the paper); ours is a leaner but structurally faithful graph:
it is cyclic (datatypes refer to their constructors and back), it shares
substructure aggressively, and every generative object carries a stamp.
"""

from repro.semant.stamps import Stamp, StampGenerator, fresh_stamp
from repro.semant.env import Env, Functor, Sig, Structure, ValueBinding
from repro.semant import types

__all__ = [
    "Stamp",
    "StampGenerator",
    "fresh_stamp",
    "Env",
    "Structure",
    "Sig",
    "Functor",
    "ValueBinding",
    "types",
]
