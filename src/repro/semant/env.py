"""Static environments and module-level semantic objects.

The paper's §4 asks two things of environments:

- *layering*: the context for compiling a unit is the composition of the
  exported environments of everything it imports, plus the pervasive
  basis.  :meth:`Env.atop` builds such compositions without copying.
- *indexing by stamp*: the rehydrater must find "the real in-core pointer"
  for a stub; :func:`stamp_index` builds the reverse map from a context
  environment.

An :class:`Env` holds five namespaces, mirroring SML's: values (including
data and exception constructors), type constructors, structures,
signatures, and functors.
"""

from __future__ import annotations

from repro.lang import ast
from repro.semant.stamps import Stamp
from repro.semant.types import (
    AbstractTycon,
    Constructor,
    DatatypeTycon,
    Tycon,
    Type,
    TypeFun,
)

NAMESPACES = ("values", "tycons", "structures", "signatures", "functors")


class ValueBinding:
    """A value-namespace entry: a type scheme, plus the constructor when
    the name denotes a data or exception constructor."""

    __slots__ = ("scheme", "con")

    def __init__(self, scheme: Type, con: Constructor | None = None):
        self.scheme = scheme
        self.con = con

    def is_constructor(self) -> bool:
        return self.con is not None

    def __repr__(self) -> str:
        tag = f" [{self.con!r}]" if self.con else ""
        return f"<val {self.scheme!r}{tag}>"


class Env:
    """One environment frame, optionally layered atop a parent.

    Frames are mutated while their defining declaration is being
    elaborated and treated as immutable afterwards.
    """

    __slots__ = ("values", "tycons", "structures", "signatures", "functors",
                 "parent")

    def __init__(self, parent: "Env | None" = None):
        self.values: dict[str, ValueBinding] = {}
        self.tycons: dict[str, Tycon | TypeFun] = {}
        self.structures: dict[str, Structure] = {}
        self.signatures: dict[str, Sig] = {}
        self.functors: dict[str, Functor] = {}
        self.parent = parent

    # -- construction -----------------------------------------------------

    def child(self) -> "Env":
        """A fresh frame scoping over this one."""
        return Env(parent=self)

    def atop(self, base: "Env") -> "Env":
        """Layer this frame's bindings (frame only, not its parents) over
        ``base``, returning a new composite frame."""
        merged = Env(parent=base)
        merged.absorb(self)
        return merged

    def absorb(self, other: "Env") -> None:
        """Copy the bindings of ``other``'s top frame into this frame."""
        self.values.update(other.values)
        self.tycons.update(other.tycons)
        self.structures.update(other.structures)
        self.signatures.update(other.signatures)
        self.functors.update(other.functors)

    # -- lookups ------------------------------------------------------------

    def _lookup(self, namespace: str, name: str):
        env: Env | None = self
        while env is not None:
            table = getattr(env, namespace)
            if name in table:
                return table[name]
            env = env.parent
        return None

    def lookup_value(self, name: str) -> ValueBinding | None:
        return self._lookup("values", name)

    def lookup_tycon(self, name: str):
        return self._lookup("tycons", name)

    def lookup_structure(self, name: str) -> "Structure | None":
        return self._lookup("structures", name)

    def lookup_signature(self, name: str) -> "Sig | None":
        return self._lookup("signatures", name)

    def lookup_functor(self, name: str) -> "Functor | None":
        return self._lookup("functors", name)

    def lookup_structure_path(self, path: ast.Path) -> "Structure | None":
        """Resolve a qualified structure path like A.B.C."""
        struct = self.lookup_structure(path[0])
        for name in path[1:]:
            if struct is None:
                return None
            struct = struct.env.structures.get(name)
        return struct

    def _lookup_qualified(self, namespace: str, path: ast.Path):
        if len(path) == 1:
            return self._lookup(namespace, path[0])
        struct = self.lookup_structure_path(path[:-1])
        if struct is None:
            return None
        return getattr(struct.env, namespace).get(path[-1])

    def lookup_value_path(self, path: ast.Path) -> ValueBinding | None:
        return self._lookup_qualified("values", path)

    def lookup_tycon_path(self, path: ast.Path):
        return self._lookup_qualified("tycons", path)

    # -- binding ---------------------------------------------------------

    def bind_value(self, name: str, binding: ValueBinding) -> None:
        self.values[name] = binding

    def bind_tycon(self, name: str, tycon: Tycon | TypeFun) -> None:
        self.tycons[name] = tycon

    def bind_structure(self, name: str, struct: "Structure") -> None:
        self.structures[name] = struct

    def bind_signature(self, name: str, sig: "Sig") -> None:
        self.signatures[name] = sig

    def bind_functor(self, name: str, functor: "Functor") -> None:
        self.functors[name] = functor

    # -- misc ---------------------------------------------------------------

    def frame_names(self) -> dict[str, list[str]]:
        """Names bound in this frame, by namespace (sorted)."""
        return {ns: sorted(getattr(self, ns)) for ns in NAMESPACES}

    def is_empty_frame(self) -> bool:
        return not any(getattr(self, ns) for ns in NAMESPACES)

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{ns}={len(getattr(self, ns))}" for ns in NAMESPACES
            if getattr(self, ns)
        )
        chained = " +parent" if self.parent is not None else ""
        return f"<env {sizes or 'empty'}{chained}>"


class Structure:
    """An elaborated structure: a stamp and its exported environment."""

    __slots__ = ("stamp", "name", "env")

    def __init__(self, stamp: Stamp, name: str, env: Env):
        self.stamp = stamp
        self.name = name
        self.env = env

    def __repr__(self) -> str:
        return f"<structure {self.name} {self.stamp!r}>"


class Sig:
    """An elaborated signature: a *formal instance*.

    ``env`` binds the specified names to formal objects; tycon specs
    without a definition become fresh :class:`AbstractTycon`s whose stamps
    are listed in ``flex`` -- the signature's bound (flexible) stamps,
    instantiated by signature matching.
    """

    __slots__ = ("stamp", "name", "env", "flex")

    def __init__(self, stamp: Stamp, name: str, env: Env,
                 flex: list[Stamp]):
        self.stamp = stamp
        self.name = name
        self.env = env
        self.flex = flex

    def is_flexible(self, tycon) -> bool:
        return (
            isinstance(tycon, (AbstractTycon, DatatypeTycon))
            and any(tycon.stamp is s for s in self.flex)
        )

    def __repr__(self) -> str:
        return f"<sig {self.name} {self.stamp!r} flex={len(self.flex)}>"


class Functor:
    """An elaborated functor.

    The body is kept as AST together with the definition environment; an
    application re-elaborates the body against the actual argument (after
    matching it to ``param_sig``), which yields the Definition's
    generative semantics: each application mints fresh stamps.

    ``result_sig`` is kept as *AST* and elaborated at each application
    with the parameter in scope, so dependent result signatures
    (``: SORTER where type t = P.t``) work.

    Higher-order form: when ``fct_param`` is set (a tuple of the inner
    parameter name, the parameter signature AST, and the result
    signature AST), the functor takes a *functor* argument and
    ``param_sig`` is None.  A Functor whose ``body`` is None is a
    *formal* (abstract) functor -- the stand-in bound during
    definition-time checking; applying it yields a fresh instance of its
    result signature.
    """

    __slots__ = ("stamp", "name", "param_name", "param_sig", "result_sig",
                 "opaque", "body", "def_env", "fct_param")

    def __init__(self, stamp: Stamp, name: str, param_name: str,
                 param_sig: "Sig | None", result_sig: "Sig | None",
                 opaque: bool, body, def_env: Env,
                 fct_param=None):
        self.stamp = stamp
        self.name = name
        self.param_name = param_name
        self.param_sig = param_sig
        self.result_sig = result_sig
        self.opaque = opaque
        self.body = body
        self.def_env = def_env
        self.fct_param = fct_param

    def is_formal(self) -> bool:
        return self.body is None

    def takes_functor(self) -> bool:
        return self.fct_param is not None

    def __repr__(self) -> str:
        return f"<functor {self.name} {self.stamp!r}>"


def stamp_index(env: Env, index: dict[int, object] | None = None,
                _seen: set[int] | None = None) -> dict[int, object]:
    """Build the paper's "indexed environment": stamp id -> live object,
    over everything reachable from ``env`` (including parents).

    Used by the rehydrater to resolve stubs into real pointers.
    """
    if index is None:
        index = {}
    if _seen is None:
        _seen = set()
    node: Env | None = env
    while node is not None:
        if id(node) in _seen:
            break
        _seen.add(id(node))
        for tycon in node.tycons.values():
            if isinstance(tycon, (DatatypeTycon, AbstractTycon)):
                index.setdefault(tycon.stamp.id, tycon)
        for struct in node.structures.values():
            if struct.stamp.id not in index:
                index[struct.stamp.id] = struct
                stamp_index(struct.env, index, _seen)
        for sig in node.signatures.values():
            if sig.stamp.id not in index:
                index[sig.stamp.id] = sig
                stamp_index(sig.env, index, _seen)
        for functor in node.functors.values():
            if functor.stamp.id not in index:
                index[functor.stamp.id] = functor
                if functor.param_sig is not None:
                    stamp_index(functor.param_sig.env, index, _seen)
                # result_sig and fct_param hold AST (re-elaborated per
                # application); no semantic objects to index there.
                stamp_index(functor.def_env, index, _seen)
        node = node.parent
    return index
