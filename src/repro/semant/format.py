"""Pretty-printing of semantic types, SML-style."""

from __future__ import annotations

from repro.semant.types import (
    BoundVar,
    ConType,
    FlexRecord,
    FunType,
    PolyType,
    RecordType,
    TyVar,
    Type,
    prune,
)

_VAR_NAMES = "abcdefghijklmnopqrstuvwxyz"


def _var_name(index: int, eq: bool) -> str:
    prefix = "''" if eq else "'"
    if index < 26:
        return prefix + _VAR_NAMES[index]
    return f"{prefix}{_VAR_NAMES[index % 26]}{index // 26}"


def format_type(ty: Type) -> str:
    """Render a type (or scheme) the way an SML top level would."""
    eqflags: tuple[bool, ...] = ()
    if isinstance(ty, PolyType):
        eqflags = ty.eqflags
        ty = ty.body
    free: dict[int, str] = {}

    def walk(t: Type, prec: int) -> str:
        t = prune(t)
        if isinstance(t, BoundVar):
            eq = t.index < len(eqflags) and eqflags[t.index]
            return _var_name(t.index, eq)
        if isinstance(t, TyVar):
            if t.id not in free:
                free[t.id] = _var_name(1000 + len(free), t.eq).replace(
                    "'", "'Z", 1)
            return free[t.id]
        if isinstance(t, FlexRecord):
            inner = ", ".join(
                f"{label}: {walk(f, 0)}"
                for label, f in sorted(t.fields.items()))
            return "{" + inner + ", ...}"
        if isinstance(t, FunType):
            # Precedences: arrow 1, tuple 2, application 3.
            text = f"{walk(t.dom, 2)} -> {walk(t.rng, 1)}"
            return f"({text})" if prec >= 2 else text
        if isinstance(t, RecordType):
            if not t.fields:
                return "unit"
            if t.is_tuple():
                text = " * ".join(walk(f, 3) for _, f in t.fields)
                return f"({text})" if prec >= 3 else text
            inner = ", ".join(
                f"{label}: {walk(f, 0)}" for label, f in t.fields)
            return "{" + inner + "}"
        if isinstance(t, ConType):
            if not t.args:
                return t.tycon.name
            if len(t.args) == 1:
                return f"{walk(t.args[0], 3)} {t.tycon.name}"
            inner = ", ".join(walk(a, 0) for a in t.args)
            return f"({inner}) {t.tycon.name}"
        return repr(t)

    return walk(ty, 0)
