"""The primitive layer of the initial basis.

Defines the pervasive type constructors (``int``, ``bool``, ``'a list``,
...) and the static types of the primitive values (arithmetic, comparison,
references, string operations, ...).  The *dynamic* meanings live in
:mod:`repro.dynamic.builtins`; the rest of the initial basis is written in
SML itself (:mod:`repro.basis`) and bootstrapped through the compiler.

All primitive tycons and constructors are module-level singletons so that
every compilation session in one Python process agrees on their identity,
exactly as every SML/NJ unit agrees on the pervasive environment.
"""

from __future__ import annotations

from repro.semant.env import Env, Structure, ValueBinding
from repro.semant.stamps import fresh_stamp
from repro.semant.types import (
    BoundVar,
    ConType,
    Constructor,
    DatatypeTycon,
    FunType,
    OverloadScheme,
    PolyType,
    PrimTycon,
    RecordType,
    Type,
    tuple_type,
    unit_type,
)

# -- primitive tycons -------------------------------------------------------

INT = PrimTycon("int", 0, True)
WORD = PrimTycon("word", 0, True)
REAL = PrimTycon("real", 0, False)  # real is not an equality type in SML
STRING = PrimTycon("string", 0, True)
CHAR = PrimTycon("char", 0, True)
EXN = PrimTycon("exn", 0, False)
REF = PrimTycon("ref", 1, "always")
ARRAY = PrimTycon("array", 1, "always")
VECTOR = PrimTycon("vector", 1, True)

# -- pervasive datatypes (bool, list, option, order) -----------------------

BOOL = DatatypeTycon(fresh_stamp(), "bool", 0)
LIST = DatatypeTycon(fresh_stamp(), "list", 1)
OPTION = DatatypeTycon(fresh_stamp(), "option", 1)
ORDER = DatatypeTycon(fresh_stamp(), "order", 0)


def int_type() -> Type:
    return ConType(INT)


def word_type() -> Type:
    return ConType(WORD)


def real_type() -> Type:
    return ConType(REAL)


def string_type() -> Type:
    return ConType(STRING)


def char_type() -> Type:
    return ConType(CHAR)


def exn_type() -> Type:
    return ConType(EXN)


def bool_type() -> Type:
    return ConType(BOOL)


def order_type() -> Type:
    return ConType(ORDER)


def list_type(elem: Type) -> Type:
    return ConType(LIST, (elem,))


def option_type(elem: Type) -> Type:
    return ConType(OPTION, (elem,))


def ref_type(elem: Type) -> Type:
    return ConType(REF, (elem,))


def vector_type(elem: Type) -> Type:
    return ConType(VECTOR, (elem,))


def array_type(elem: Type) -> Type:
    return ConType(ARRAY, (elem,))


def _con(name: str, tycon: DatatypeTycon, scheme: Type,
         has_arg: bool) -> Constructor:
    con = Constructor(name, tycon, scheme, has_arg)
    tycon.constructors.append(con)
    return con


TRUE = _con("true", BOOL, bool_type(), has_arg=False)
FALSE = _con("false", BOOL, bool_type(), has_arg=False)

NIL = _con("nil", LIST, PolyType(1, ConType(LIST, (BoundVar(0),))),
           has_arg=False)
CONS = _con(
    "::", LIST,
    PolyType(
        1,
        FunType(
            tuple_type([BoundVar(0), ConType(LIST, (BoundVar(0),))]),
            ConType(LIST, (BoundVar(0),)),
        ),
    ),
    has_arg=True,
)

NONE_CON = _con("NONE", OPTION, PolyType(1, ConType(OPTION, (BoundVar(0),))),
                has_arg=False)
SOME = _con(
    "SOME", OPTION,
    PolyType(1, FunType(BoundVar(0), ConType(OPTION, (BoundVar(0),)))),
    has_arg=True,
)

LESS = _con("LESS", ORDER, order_type(), has_arg=False)
EQUAL = _con("EQUAL", ORDER, order_type(), has_arg=False)
GREATER = _con("GREATER", ORDER, order_type(), has_arg=False)


# -- primitive exceptions ---------------------------------------------------


def _exn(name: str, arg: Type | None) -> Constructor:
    scheme = FunType(arg, exn_type()) if arg is not None else exn_type()
    return Constructor(name, None, scheme, has_arg=arg is not None,
                       is_exn=True)


PRIM_EXCEPTIONS = {
    "Fail": _exn("Fail", string_type()),
    "Div": _exn("Div", None),
    "Overflow": _exn("Overflow", None),
    "Subscript": _exn("Subscript", None),
    "Size": _exn("Size", None),
    "Chr": _exn("Chr", None),
    "Domain": _exn("Domain", None),
    "Match": _exn("Match", None),
    "Bind": _exn("Bind", None),
    "Empty": _exn("Empty", None),
    "Option": _exn("Option", None),
}


# -- primitive value types ---------------------------------------------------


def _binop(ty: Type, result: Type | None = None) -> Type:
    return FunType(tuple_type([ty, ty]), result if result is not None else ty)


def _eq_scheme() -> PolyType:
    return PolyType(
        1, FunType(tuple_type([BoundVar(0), BoundVar(0)]), bool_type()),
        eqflags=(True,),
    )


def _overloaded_binop(candidates, default) -> OverloadScheme:
    var = BoundVar(0)
    return OverloadScheme(
        FunType(tuple_type([var, var]), var), tuple(candidates), default)


def _overloaded_compare(candidates, default) -> OverloadScheme:
    var = BoundVar(0)
    return OverloadScheme(
        FunType(tuple_type([var, var]), bool_type()), tuple(candidates),
        default)


def _overloaded_unop(candidates, default) -> OverloadScheme:
    var = BoundVar(0)
    return OverloadScheme(FunType(var, var), tuple(candidates), default)


_NUM = (INT, REAL, WORD)
_NUMTXT = (INT, REAL, WORD, STRING, CHAR)

#: name -> type scheme of every primitive value.  The dynamic meanings are
#: registered under the same names in :mod:`repro.dynamic.builtins`.
#: Arithmetic and comparisons are overloaded per the Definition
#: (defaulting to int).
PRIM_VAL_TYPES: dict[str, Type] = {
    "+": _overloaded_binop(_NUM, INT),
    "-": _overloaded_binop(_NUM, INT),
    "*": _overloaded_binop(_NUM, INT),
    "div": _overloaded_binop((INT, WORD), INT),
    "mod": _overloaded_binop((INT, WORD), INT),
    "/": _binop(real_type()),
    "~": _overloaded_unop((INT, REAL), INT),
    "abs": _overloaded_unop((INT, REAL), INT),
    "<": _overloaded_compare(_NUMTXT, INT),
    "<=": _overloaded_compare(_NUMTXT, INT),
    ">": _overloaded_compare(_NUMTXT, INT),
    ">=": _overloaded_compare(_NUMTXT, INT),
    # Polymorphic equality.
    "=": _eq_scheme(),
    "<>": _eq_scheme(),
    # Strings and characters.
    "^": _binop(string_type()),
    "size": FunType(string_type(), int_type()),
    "str": FunType(char_type(), string_type()),
    "chr": FunType(int_type(), char_type()),
    "ord": FunType(char_type(), int_type()),
    "substring": FunType(
        tuple_type([string_type(), int_type(), int_type()]), string_type()
    ),
    "implode": FunType(list_type(char_type()), string_type()),
    "explode": FunType(string_type(), list_type(char_type())),
    "concat": FunType(list_type(string_type()), string_type()),
    # References.
    "ref": PolyType(1, FunType(BoundVar(0), ref_type(BoundVar(0)))),
    "!": PolyType(1, FunType(ref_type(BoundVar(0)), BoundVar(0))),
    ":=": PolyType(
        1, FunType(tuple_type([ref_type(BoundVar(0)), BoundVar(0)]),
                   unit_type())
    ),
    # I/O and misc.
    "print": FunType(string_type(), unit_type()),
    "ignore": PolyType(1, FunType(BoundVar(0), unit_type())),
    "exnName": FunType(exn_type(), string_type()),
}

#: Primitive values reachable only through basis structures (Int.+, ...).
#: name here is the flat internal name; repro.basis re-exports them from
#: the proper structures.
PRIM_HIDDEN_TYPES: dict[str, Type] = {
    "Int.toString": FunType(int_type(), string_type()),
    "Int.fromString": FunType(string_type(), option_type(int_type())),
    "Int.compare": _binop(int_type(), order_type()),
    "Int.min": _binop(int_type()),
    "Int.max": _binop(int_type()),
    "Int.quot": _binop(int_type()),
    "Int.rem": _binop(int_type()),
    "Real.+": _binop(real_type()),
    "Real.-": _binop(real_type()),
    "Real.*": _binop(real_type()),
    "Real./": _binop(real_type()),
    "Real.~": FunType(real_type(), real_type()),
    "Real.<": _binop(real_type(), bool_type()),
    "Real.<=": _binop(real_type(), bool_type()),
    "Real.>": _binop(real_type(), bool_type()),
    "Real.>=": _binop(real_type(), bool_type()),
    "Real.==": _binop(real_type(), bool_type()),
    "Real.fromInt": FunType(int_type(), real_type()),
    "Real.floor": FunType(real_type(), int_type()),
    "Real.ceil": FunType(real_type(), int_type()),
    "Real.round": FunType(real_type(), int_type()),
    "Real.trunc": FunType(real_type(), int_type()),
    "Real.toString": FunType(real_type(), string_type()),
    "Real.sqrt": FunType(real_type(), real_type()),
    "String.<": _binop(string_type(), bool_type()),
    "String.<=": _binop(string_type(), bool_type()),
    "String.>": _binop(string_type(), bool_type()),
    "String.>=": _binop(string_type(), bool_type()),
    "String.compare": _binop(string_type(), order_type()),
    "String.sub": FunType(tuple_type([string_type(), int_type()]),
                          char_type()),
    "Char.<": _binop(char_type(), bool_type()),
    "Char.<=": _binop(char_type(), bool_type()),
    "Char.compare": _binop(char_type(), order_type()),
    "Word.+": _binop(word_type()),
    "Word.-": _binop(word_type()),
    "Word.*": _binop(word_type()),
    "Word.andb": _binop(word_type()),
    "Word.orb": _binop(word_type()),
    "Word.xorb": _binop(word_type()),
    "Word.toInt": FunType(word_type(), int_type()),
    "Word.fromInt": FunType(int_type(), word_type()),
    # Immutable vectors.
    "Vector.fromList": PolyType(
        1, FunType(list_type(BoundVar(0)), vector_type(BoundVar(0)))),
    "Vector.toList": PolyType(
        1, FunType(vector_type(BoundVar(0)), list_type(BoundVar(0)))),
    "Vector.tabulate": PolyType(
        1, FunType(tuple_type([int_type(),
                               FunType(int_type(), BoundVar(0))]),
                   vector_type(BoundVar(0)))),
    "Vector.length": PolyType(
        1, FunType(vector_type(BoundVar(0)), int_type())),
    "Vector.sub": PolyType(
        1, FunType(tuple_type([vector_type(BoundVar(0)), int_type()]),
                   BoundVar(0))),
    "Vector.concat": PolyType(
        1, FunType(list_type(vector_type(BoundVar(0))),
                   vector_type(BoundVar(0)))),
    "Vector.map": PolyType(
        2, FunType(FunType(BoundVar(0), BoundVar(1)),
                   FunType(vector_type(BoundVar(0)),
                           vector_type(BoundVar(1))))),
    "Vector.foldl": PolyType(
        2, FunType(FunType(tuple_type([BoundVar(0), BoundVar(1)]),
                           BoundVar(1)),
                   FunType(BoundVar(1),
                           FunType(vector_type(BoundVar(0)),
                                   BoundVar(1))))),
    # Mutable arrays (equality by identity, like ref).
    "Array.array": PolyType(
        1, FunType(tuple_type([int_type(), BoundVar(0)]),
                   array_type(BoundVar(0)))),
    "Array.fromList": PolyType(
        1, FunType(list_type(BoundVar(0)), array_type(BoundVar(0)))),
    "Array.tabulate": PolyType(
        1, FunType(tuple_type([int_type(),
                               FunType(int_type(), BoundVar(0))]),
                   array_type(BoundVar(0)))),
    "Array.length": PolyType(
        1, FunType(array_type(BoundVar(0)), int_type())),
    "Array.sub": PolyType(
        1, FunType(tuple_type([array_type(BoundVar(0)), int_type()]),
                   BoundVar(0))),
    "Array.update": PolyType(
        1, FunType(tuple_type([array_type(BoundVar(0)), int_type(),
                               BoundVar(0)]), unit_type())),
    "Array.vector": PolyType(
        1, FunType(array_type(BoundVar(0)), vector_type(BoundVar(0)))),
}


def primitive_static_env() -> Env:
    """The static environment of the primitive layer.

    Binds the pervasive tycons, the pervasive data constructors, the
    primitive exceptions, and the primitive values.  Hidden (dotted)
    primitives are bound under their flat dotted name; :mod:`repro.basis`
    wraps them into proper structures.
    """
    env = Env()
    for tycon in (INT, WORD, REAL, STRING, CHAR, EXN, REF, ARRAY, VECTOR,
                  BOOL, LIST, OPTION, ORDER):
        env.bind_tycon(tycon.name, tycon)
    env.bind_tycon("unit", _unit_typefun())

    for con in (TRUE, FALSE, NIL, CONS, NONE_CON, SOME, LESS, EQUAL,
                GREATER):
        env.bind_value(con.name, ValueBinding(con.scheme, con))
    for name, con in PRIM_EXCEPTIONS.items():
        env.bind_value(name, ValueBinding(con.scheme, con))
    for name, scheme in PRIM_VAL_TYPES.items():
        env.bind_value(name, ValueBinding(scheme))
    for name, struct in primitive_structures().items():
        env.bind_structure(name, struct)
    return env


#: Cache so every session shares the same structure objects (identity
#: matters for the stamp index and the pickler).
_PRIM_STRUCTURES: dict[str, Structure] = {}


def primitive_structures() -> dict[str, Structure]:
    """The primitive basis structures (Int, Real, String, Char, Word),
    built from the dotted names in :data:`PRIM_HIDDEN_TYPES`."""
    if _PRIM_STRUCTURES:
        return _PRIM_STRUCTURES
    grouped: dict[str, Env] = {}
    for dotted, scheme in PRIM_HIDDEN_TYPES.items():
        struct_name, member = dotted.split(".", 1)
        grouped.setdefault(struct_name, Env()).bind_value(
            member, ValueBinding(scheme))
    for struct_name, env in grouped.items():
        _PRIM_STRUCTURES[struct_name] = Structure(
            fresh_stamp(), struct_name, env)
    return _PRIM_STRUCTURES


def _unit_typefun():
    from repro.semant.types import TypeFun

    return TypeFun(0, RecordType(()), name="unit")


#: Names that, in patterns, the elaborator treats as pervasive
#: constructors even without an environment hit (never shadowed in
#: practice -- mirrors the Definition's treatment of ``true``/``false``).
PERVASIVE_CONSTRUCTORS = {
    "true": TRUE,
    "false": FALSE,
    "nil": NIL,
    "::": CONS,
    "NONE": NONE_CON,
    "SOME": SOME,
    "LESS": LESS,
    "EQUAL": EQUAL,
    "GREATER": GREATER,
}
