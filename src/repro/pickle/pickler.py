"""Dehydration (pickling) and rehydration (unpickling) of semantic
object graphs.

Wire format: a tagged byte stream.  Every class instance is memoized
*shell-first* (the decoder allocates the object, registers it, then fills
fields), so cyclic graphs -- datatypes and their constructors -- roundtrip
exactly, and shared subgraphs are written once (back-references), keeping
bin files linear in the object graph.

Two pluggable boundaries implement the paper's dehydration:

- ``local_stamp_ids`` + ``extern``: a stamped object whose stamp the
  current unit does not own is written as ``STUB(pid, index)`` where
  ``extern(stamp_id)`` supplies the owning unit's pid and the object's
  export index within that unit's bin file.
- ``context_env_ids``: environment frames belonging to the compilation
  context (imports + basis layering) are written as a ``CONTEXT`` mark;
  the rehydrater splices the *current session's* context environment in
  their place.

Export indices: every locally-owned stamped object is assigned the next
index in encounter order.  The encoder and decoder perform the identical
traversal, so indices agree across sessions -- they are the "stamps" of
the paper's (pid, stamp) stubs.
"""

from __future__ import annotations

import struct

from repro.pickle.registry import (
    CLASS_TO_TAG,
    STAMPED_CLASSES,
    TAG_TO_ENTRY,
    prim_tycon_table,
)
from repro.semant.env import Env
from repro.semant.stamps import Stamp, StampGenerator, default_generator
from repro.semant.types import FlexRecord, TyVar, prune

_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_REF = 6
_T_TUPLE = 7
_T_LIST = 8
_T_DICT = 9
_T_OBJ = 10
_T_STUB = 11
_T_CONTEXT = 12
_T_PRIM = 13
_T_STAMP = 14
_T_BYTES = 15
_T_STRREF = 16

#: Ceiling on a decoded varint's width.  Generous -- 64 Kibit covers any
#: value a real program pickles -- while keeping a corrupt stream of
#: continuation bytes from accumulating a multi-megabit bigint.
_MAX_VARINT_BITS = 1 << 16


def _must_memoize(obj) -> bool:
    """In the tree-mode (share=False) ablation, only the objects that can
    participate in reference *cycles* stay memoized -- datatypes (which
    point to constructors pointing back) and stamps.  Everything else is
    re-serialized on every encounter, exhibiting the blowup."""
    from repro.semant.types import DatatypeTycon

    return isinstance(obj, (Stamp, DatatypeTycon))


class PickleError(Exception):
    """Raised when an object graph cannot be dehydrated (unresolved type
    variable, unregistered class, dangling external reference)."""


class UnpickleError(Exception):
    """Raised when a bin file cannot be rehydrated (stale or missing
    context, corrupt stream)."""


def _write_varint(out: bytearray, value: int) -> None:
    assert value >= 0
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(value: int) -> int:
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return -( (value + 1) >> 1) if value & 1 else value >> 1


class Pickler:
    """One dehydration run over a root object."""

    def __init__(
        self,
        local_stamp_ids: set[int] | frozenset[int] = frozenset(),
        extern=None,
        context_env_ids: set[int] | frozenset[int] = frozenset(),
        normalize_lines: bool = False,
        share: bool = True,
        raw_stamps: bool = False,
    ):
        """``share=False`` and ``raw_stamps=True`` are *ablations* used by
        the benchmarks to demonstrate why the paper's design needs DAG
        sharing (§4) and stamp alpha-conversion (§5) respectively:

        - ``share=False`` memoizes only stamped objects (the minimum to
          terminate on cyclic datatypes); everything else is written as a
          tree, exhibiting the exponential blowup the paper warns about.
        - ``raw_stamps=True`` writes each stamp's raw session-local id
          into the stream, so the bytes (and any hash of them) differ
          between sessions that elaborated the same source.  Streams
          written this way are for hashing experiments only, not for
          rehydration.
        """
        self.local_stamp_ids = local_stamp_ids
        self.extern = extern
        self.context_env_ids = context_env_ids
        self.normalize_lines = normalize_lines
        self.share = share
        self.raw_stamps = raw_stamps
        self._out = bytearray()
        self._memo: dict[int, int] = {}
        self._alive: list[object] = []  # keeps ids stable
        self._slots = 0  # decoder-aligned DEF counter
        self._strings: dict[str, int] = {}
        #: Locally-owned stamped objects in encounter order.
        self.export_index: list[object] = []
        #: Bytes produced by the last :meth:`run` (telemetry: the bin
        #: payload size this dehydration will cost on disk).
        self.bytes_out = 0

    def run(self, root) -> bytes:
        self._encode(root)
        self.bytes_out = len(self._out)
        return bytes(self._out)

    # -- encoding ---------------------------------------------------------

    def _encode(self, obj) -> None:
        out = self._out
        if obj is None:
            out.append(_T_NONE)
            return
        if obj is True:
            out.append(_T_TRUE)
            return
        if obj is False:
            out.append(_T_FALSE)
            return
        if type(obj) is int:
            out.append(_T_INT)
            _write_varint(out, _zigzag(obj))
            return
        if type(obj) is float:
            out.append(_T_FLOAT)
            out.extend(struct.pack(">d", obj))
            return
        if type(obj) is str:
            idx = self._strings.get(obj)
            if idx is not None:
                out.append(_T_STRREF)
                _write_varint(out, idx)
                return
            self._strings[obj] = len(self._strings)
            data = obj.encode("utf-8")
            out.append(_T_STR)
            _write_varint(out, len(data))
            out.extend(data)
            return
        if type(obj) is bytes:
            out.append(_T_BYTES)
            _write_varint(out, len(obj))
            out.extend(obj)
            return
        if type(obj) is tuple:
            out.append(_T_TUPLE)
            _write_varint(out, len(obj))
            for item in obj:
                self._encode(item)
            return
        if type(obj) is list:
            out.append(_T_LIST)
            _write_varint(out, len(obj))
            for item in obj:
                self._encode(item)
            return
        if type(obj) is dict:
            out.append(_T_DICT)
            _write_varint(out, len(obj))
            try:
                items = sorted(obj.items())  # canonical key order
            except TypeError:
                items = list(obj.items())
            for key, value in items:
                self._encode(key)
                self._encode(value)
            return
        self._encode_object(obj)

    def _encode_object(self, obj) -> None:
        out = self._out
        if isinstance(obj, (TyVar, FlexRecord)):
            resolved = prune(obj)
            if resolved is obj:
                raise PickleError(
                    f"cannot dehydrate an unresolved type variable "
                    f"{obj!r}; the unit exports an incompletely inferred "
                    f"type")
            self._encode(resolved)
            return

        memo_idx = self._memo.get(id(obj))
        if memo_idx is not None:
            out.append(_T_REF)
            _write_varint(out, memo_idx)
            return

        prim_table = prim_tycon_table()
        cls = type(obj)
        if cls.__name__ == "PrimTycon":
            out.append(_T_PRIM)
            self._encode(obj.name)
            return

        if isinstance(obj, Stamp):
            # A stamp reached directly (e.g. a Sig's flex list).  Stamps
            # carry no payload: identity is the memo index, which doubles
            # as the paper's alpha-converted "provisional pid".  (The
            # raw_stamps ablation writes the session-local id instead,
            # deliberately breaking cross-session stability.)
            self._remember(obj)
            out.append(_T_STAMP)
            if self.raw_stamps:
                _write_varint(out, obj.id)
            return

        if isinstance(obj, STAMPED_CLASSES):
            if obj.stamp.id not in self.local_stamp_ids:
                self._encode_stub(obj)
                return
            self.export_index.append(obj)

        if isinstance(obj, Env) and id(obj) in self.context_env_ids:
            out.append(_T_CONTEXT)
            return

        tag = CLASS_TO_TAG.get(cls)
        if tag is None:
            raise PickleError(
                f"object of class {cls.__module__}.{cls.__name__} is not "
                f"registered for dehydration: {obj!r}")
        self._remember(obj)
        out.append(_T_OBJ)
        _write_varint(out, tag)
        _, fields = TAG_TO_ENTRY[tag]
        for field in fields:
            value = getattr(obj, field)
            if field == "line" and self.normalize_lines:
                value = 0
            self._encode(value)
        _ = prim_table  # built lazily once; kept for clarity

    def _encode_stub(self, obj) -> None:
        if self.extern is None:
            raise PickleError(
                f"external reference to {obj!r} but no extern registry "
                f"was provided")
        try:
            pid, index = self.extern(obj.stamp.id)
        except KeyError:
            raise PickleError(
                f"dangling external reference: {obj!r} (stamp "
                f"{obj.stamp.id}) is owned by no registered unit") from None
        self._remember(obj)
        self._out.append(_T_STUB)
        self._encode(pid)
        _write_varint(self._out, index)

    def _remember(self, obj) -> None:
        slot = self._slots
        self._slots += 1
        if self.share or _must_memoize(obj):
            self._memo[id(obj)] = slot
            self._alive.append(obj)


class Unpickler:
    """One rehydration run over a byte stream."""

    def __init__(
        self,
        data: bytes,
        resolve=None,
        context_env: Env | None = None,
        stamps: StampGenerator | None = None,
    ):
        self._data = data
        self._pos = 0
        self._resolve = resolve
        self._context_env = context_env
        self._stamps = stamps or default_generator()
        self._memo: list[object] = []
        self._strings: list[str] = []
        self.export_index: list[object] = []
        #: Bytes consumed (telemetry: rehydration input size).
        self.bytes_in = len(data)

    def run(self):
        try:
            value = self._decode()
        except UnpickleError:
            raise
        except (IndexError, KeyError, TypeError, ValueError, struct.error,
                OverflowError, MemoryError, RecursionError) as err:
            # A corrupt stream must surface as UnpickleError, never as a
            # raw decoding exception: callers treat UnpickleError as a
            # cache miss, anything else as a bug.
            raise UnpickleError(
                f"corrupt bin stream ({type(err).__name__}: {err}) "
                f"at byte {self._pos} of {len(self._data)}") from err
        if self._pos != len(self._data):
            raise UnpickleError(
                f"trailing bytes in bin stream ({len(self._data) - self._pos})")
        return value

    # -- decoding ---------------------------------------------------------

    def _fail(self, message: str):
        raise UnpickleError(
            f"{message} (at byte {self._pos} of {len(self._data)})")

    def _read_byte(self) -> int:
        if self._pos >= len(self._data):
            self._fail("truncated bin stream")
        byte = self._data[self._pos]
        self._pos += 1
        return byte

    def _read_varint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self._read_byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            # SML ints are arbitrary precision, so varints have no fixed
            # width -- but a continuation run this long is garbage, and
            # without a cap the accumulating bigint makes decoding a
            # corrupt megabyte stream quadratic.
            if shift > _MAX_VARINT_BITS:
                self._fail("varint too long; corrupt bin stream")

    def _read_bytes(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            self._fail("truncated bin stream")
        data = self._data[self._pos:self._pos + count]
        self._pos += count
        return data

    def _decode(self):
        tag = self._read_byte()
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return _unzigzag(self._read_varint())
        if tag == _T_FLOAT:
            return struct.unpack(">d", self._read_bytes(8))[0]
        if tag == _T_STR:
            text = self._read_bytes(self._read_varint()).decode("utf-8")
            self._strings.append(text)
            return text
        if tag == _T_STRREF:
            index = self._read_varint()
            if index >= len(self._strings):
                self._fail(f"string back-reference #{index} out of range")
            return self._strings[index]
        if tag == _T_BYTES:
            return self._read_bytes(self._read_varint())
        if tag == _T_REF:
            index = self._read_varint()
            if index >= len(self._memo):
                self._fail(f"back-reference #{index} out of range")
            return self._memo[index]
        if tag == _T_TUPLE:
            return tuple(
                self._decode() for _ in range(self._read_varint()))
        if tag == _T_LIST:
            return [self._decode() for _ in range(self._read_varint())]
        if tag == _T_DICT:
            count = self._read_varint()
            out = {}
            for _ in range(count):
                key = self._decode()
                out[key] = self._decode()
            return out
        if tag == _T_PRIM:
            name = self._decode()
            table = prim_tycon_table()
            if name not in table:
                self._fail(f"unknown primitive tycon {name}")
            return table[name]
        if tag == _T_STAMP:
            stamp = self._stamps.fresh()
            self._memo.append(stamp)
            return stamp
        if tag == _T_STUB:
            return self._decode_stub()
        if tag == _T_CONTEXT:
            if self._context_env is None:
                self._fail(
                    "bin stream references its compilation context but "
                    "none was provided")
            return self._context_env
        if tag == _T_OBJ:
            return self._decode_object()
        self._fail(f"unknown tag {tag}")

    def _decode_stub(self):
        memo_slot = len(self._memo)
        self._memo.append(None)
        pid = self._decode()
        index = self._read_varint()
        if self._resolve is None:
            self._fail(
                f"bin stream has external reference ({pid}, {index}) but "
                f"no resolver was provided")
        try:
            obj = self._resolve(pid, index)
        except KeyError:
            self._fail(
                f"unresolved external reference: unit {pid} export "
                f"#{index} is not in the context")
        self._memo[memo_slot] = obj
        return obj

    def _decode_object(self):
        class_tag = self._read_varint()
        entry = TAG_TO_ENTRY.get(class_tag)
        if entry is None:
            self._fail(f"unknown class tag {class_tag}")
        cls, fields = entry
        shell = cls.__new__(cls)
        self._memo.append(shell)
        if isinstance(shell, STAMPED_CLASSES):
            self.export_index.append(shell)
        for field in fields:
            value = self._decode()
            if field == "stamp" and value is None and isinstance(
                    shell, STAMPED_CLASSES):
                value = self._stamps.fresh()
            object.__setattr__(shell, field, value)
        return shell


def dehydrate(
    root,
    local_stamp_ids=frozenset(),
    extern=None,
    context_env_ids=frozenset(),
    normalize_lines: bool = False,
) -> tuple[bytes, list[object]]:
    """Dehydrate ``root``; returns (bytes, export index)."""
    pickler = Pickler(local_stamp_ids, extern, context_env_ids,
                      normalize_lines)
    data = pickler.run(root)
    return data, pickler.export_index


def rehydrate(
    data: bytes,
    resolve=None,
    context_env: Env | None = None,
    stamps: StampGenerator | None = None,
) -> tuple[object, list[object]]:
    """Rehydrate a byte stream; returns (root, export index)."""
    unpickler = Unpickler(data, resolve, context_env, stamps)
    root = unpickler.run()
    return root, unpickler.export_index


def context_chain_ids(env: Env | None) -> frozenset[int]:
    """The ids of every frame in an environment chain -- used to mark the
    compilation context as a dehydration boundary."""
    ids = set()
    while env is not None:
        ids.add(id(env))
        env = env.parent
    return frozenset(ids)
