"""The pickler: dehydration and rehydration of static environments.

Section 4 of the paper: compiled static environments must be written to
"bin" files for use in later sessions.  Doing this naively has two
problems the paper names explicitly, and this package solves both the
same way SML/NJ did:

1. *Sharing*: static environments form DAGs (and cycles, through
   datatypes); copying them as trees explodes exponentially.  The pickler
   memoizes every semantic object, emitting back-references, so the bin
   file is linear in the object graph (benchmark T4 measures this).
2. *External references*: an environment may point into objects owned by
   other compilation units (or the pervasive basis).  "We 'dehydrate' the
   environment by identifying the external pointers and replacing them by
   stubs" -- a stub names the defining unit's pid and the object's export
   index.  Rehydration resolves stubs through a registry built from the
   context units, "replacing the stubs with the right pointers".
"""

from repro.pickle.pickler import (
    PickleError,
    Pickler,
    UnpickleError,
    Unpickler,
    dehydrate,
    rehydrate,
)

__all__ = [
    "PickleError",
    "UnpickleError",
    "Pickler",
    "Unpickler",
    "dehydrate",
    "rehydrate",
]
