"""The class registry: which Python classes may appear in a bin file.

The paper reports SML/NJ's static environments span "36 different
datatypes [with] a total of 115 variants [and] 193 record fields"; this
table is our equivalent inventory.  Classes are listed in a fixed order
so class tags are stable across sessions; each entry carries the field
names to serialize (from ``__slots__`` or dataclass fields).

Only classes in this registry can be dehydrated -- anything else in an
export environment is a bug, and the pickler reports it rather than
guessing.
"""

from __future__ import annotations

import dataclasses

from repro.lang import ast
from repro.semant import env as env_mod
from repro.semant import types as types_mod
from repro.semant.stamps import Stamp


def _dataclass_fields(cls) -> tuple[str, ...]:
    return tuple(f.name for f in dataclasses.fields(cls))


def _slots_fields(cls) -> tuple[str, ...]:
    return tuple(cls.__slots__)


#: Ordered list of (class, field names).  Order defines class tags.
def _build() -> list[tuple[type, tuple[str, ...]]]:
    entries: list[tuple[type, tuple[str, ...]]] = []

    # Semantic objects (stamps are handled by a dedicated tag, and
    # PrimTycon by the PRIM tag; neither appears here).
    for cls in (
        types_mod.ConType,
        types_mod.RecordType,
        types_mod.FunType,
        types_mod.PolyType,
        types_mod.BoundVar,
        types_mod.DatatypeTycon,
        types_mod.AbstractTycon,
        types_mod.TypeFun,
        types_mod.Constructor,
        types_mod.OverloadScheme,
    ):
        entries.append((cls, _slots_fields(cls)))
    entries.append((env_mod.ValueBinding, _slots_fields(env_mod.ValueBinding)))
    entries.append((env_mod.Env, _slots_fields(env_mod.Env)))
    entries.append((env_mod.Structure, _slots_fields(env_mod.Structure)))
    entries.append((env_mod.Sig, _slots_fields(env_mod.Sig)))
    entries.append((env_mod.Functor, _slots_fields(env_mod.Functor)))

    # AST nodes (the unit's "code", and functor bodies inside
    # environments).  Every concrete dataclass in repro.lang.ast, in
    # definition order (stable: source order of the module).
    for name in dir(ast):
        cls = getattr(ast, name)
        if (
            isinstance(cls, type)
            and dataclasses.is_dataclass(cls)
            and cls.__module__ == "repro.lang.ast"
        ):
            entries.append((cls, _dataclass_fields(cls)))
    return entries


REGISTRY: list[tuple[type, tuple[str, ...]]] = _build()

CLASS_TO_TAG: dict[type, int] = {cls: i for i, (cls, _) in enumerate(REGISTRY)}
TAG_TO_ENTRY: dict[int, tuple[type, tuple[str, ...]]] = dict(enumerate(REGISTRY))

#: Classes whose instances carry a generative stamp; these are the
#: stub-able, export-indexable objects.
STAMPED_CLASSES = (
    types_mod.DatatypeTycon,
    types_mod.AbstractTycon,
    env_mod.Structure,
    env_mod.Sig,
    env_mod.Functor,
)

#: Primitive tycon singletons, serialized by name.
def prim_tycon_table() -> dict[str, object]:
    from repro.semant import prim

    return {
        tycon.name: tycon
        for tycon in (
            prim.INT, prim.WORD, prim.REAL, prim.STRING, prim.CHAR,
            prim.EXN, prim.REF, prim.ARRAY, prim.VECTOR,
        )
    }


assert Stamp not in CLASS_TO_TAG
