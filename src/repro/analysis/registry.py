"""Rule registry and runner.

A rule is a function ``(AnalysisContext) -> iterable[Diagnostic]``
registered under a stable code with the :func:`rule` decorator.  The
runner executes rules in code order so output is deterministic; rules
share the context's memoized parses, tokens and scope scans, so adding a
rule never adds a parse pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.analysis.diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    summary: str
    severity: Severity
    func: Callable = field(compare=False)


#: code -> Rule; populated by importing :mod:`repro.analysis.rules`.
RULES: dict[str, Rule] = {}


def rule(code: str, name: str, summary: str,
         severity: Severity = Severity.WARNING):
    """Register a rule function under ``code``."""

    def register(func: Callable) -> Callable:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(code, name, summary, severity, func)
        return func

    return register


def run_rules(ctx, codes: Iterable[str] | None = None) -> list[Diagnostic]:
    """Run the selected rules (all registered rules by default)."""
    import repro.analysis.rules  # noqa: F401  (registers the built-ins)

    selected = sorted(codes) if codes is not None else sorted(RULES)
    unknown = [code for code in selected if code not in RULES]
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(unknown)}; "
                         f"known: {', '.join(sorted(RULES))}")
    out: list[Diagnostic] = []
    for code in selected:
        out.extend(RULES[code].func(ctx))
    out.sort(key=Diagnostic.sort_key)
    return out
