"""Shared analysis state handed to every rule.

The context wraps the project and an already-built
:class:`~repro.cm.depend.DepGraph` and memoizes everything rules need:

- parsed declarations come straight from ``graph.parsed`` (populated by
  :func:`repro.cm.depend.analyze`, possibly from the builder's
  dependency cache) -- the analyzer never re-parses a unit;
- token streams are lexed lazily, once per unit, purely to attach
  line/col spans to names (lexing is not parsing and is an order of
  magnitude cheaper);
- use/def sets come from one shared
  :class:`~repro.analysis.scopes.UseDefAnalysis` instance -- the same
  machinery the build's per-binding cutoff consumes -- so scope scans
  and the project-wide provider map are computed once for all rules;
- the cascade report is computed once from the graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cascade import CascadeReport, cascade_report
from repro.analysis.diagnostics import Span
from repro.analysis.scopes import ScanResult, UseDefAnalysis
from repro.cm.depend import DepGraph
from repro.cm.project import Project
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokKind


@dataclass
class AnalysisConfig:
    """Tunables for the built-in rules.

    A unit is a *hot interface* (SC005) when its transitive-dependent
    count is at least ``hot_min_dependents`` and at least ``hot_ratio``
    of the other units in the project.
    """

    hot_min_dependents: int = 3
    hot_ratio: float = 0.5
    #: Run only these rule codes (None = all registered rules).
    codes: tuple[str, ...] | None = None


class AnalysisContext:
    def __init__(self, project: Project, graph: DepGraph,
                 config: AnalysisConfig | None = None):
        self.project = project
        self.graph = graph
        self.config = config if config is not None else AnalysisConfig()
        self._tokens: dict[str, list] = {}
        self._usedef: UseDefAnalysis | None = None
        self._cascade: CascadeReport | None = None

    @property
    def units(self) -> list[str]:
        return list(self.graph.order)

    def decs(self, unit: str):
        return self.graph.parsed[unit]

    def tokens(self, unit: str) -> list:
        toks = self._tokens.get(unit)
        if toks is None:
            toks = self._tokens[unit] = tokenize(self.project.source(unit))
        return toks

    def usedef(self) -> UseDefAnalysis:
        """The shared use/def analysis over the parsed project -- the
        same one the build's per-binding cutoff data comes from."""
        if self._usedef is None:
            self._usedef = UseDefAnalysis.of_graph(self.graph)
        return self._usedef

    def scan(self, unit: str) -> ScanResult:
        return self.usedef().scan(unit)

    def providers(self) -> dict[tuple[str, str], str]:
        """(ns, name) -> the unit whose top level defines it."""
        return self.usedef().providers()

    def cascade(self) -> CascadeReport:
        if self._cascade is None:
            self._cascade = cascade_report(self.graph)
        return self._cascade

    def span_of(self, unit: str, text: str, line: int | None = None) -> Span:
        """The span of the first identifier token spelled ``text`` (on
        ``line`` when given, with a whole-unit fallback)."""
        candidates = [t for t in self.tokens(unit)
                      if t.kind in (TokKind.ID, TokKind.SYMID)
                      and t.text == text]
        for token in candidates:
            if line is None or token.line == line:
                return Span.of_token(token)
        if candidates:
            return Span.of_token(candidates[0])
        return Span(line or 1, 1)
