"""Project-wide static analysis ("smlint") over the dependency DAG.

The analyzer finds the *cascade amplifiers* the paper's recompilation
model warns about -- spurious dependency edges, over-broad ``open``
declarations, unascribed (fully transparent) exports, shadowed module
bindings -- and computes cascade-risk metrics (transitive-dependent
counts, per-binding fan-in) that rank the project's hot interfaces.

Entry points::

    python -m repro.analysis <srcdir|group.cm> [--strict] [--format json]
    python -m repro.cm <srcdir> --analyze [--strict]

or programmatically::

    from repro.analysis import analyze_project
    result = analyze_project(project)          # or graph=/cache= reuse
    for diag in result.diagnostics:
        print(diag.render_text())

Diagnostic codes are stable (``SC001``...); see the README's
"Static analysis" section for the table.
"""

from repro.analysis.cascade import CascadeReport, UnitRisk, cascade_report
from repro.analysis.context import AnalysisConfig, AnalysisContext
from repro.analysis.diagnostics import (SCHEMA, Diagnostic, Severity, Span,
                                        render_json, render_text)
from repro.analysis.registry import RULES, Rule, rule, run_rules
from repro.analysis.runner import AnalysisResult, analyze_project
from repro.analysis.scopes import (ModuleBind, ModuleRef, ScanResult,
                                   UseDefAnalysis, binding_key,
                                   scan_module_refs, split_binding_key,
                                   uses_from_mentions)

__all__ = [
    "SCHEMA",
    "AnalysisConfig",
    "AnalysisContext",
    "AnalysisResult",
    "CascadeReport",
    "Diagnostic",
    "ModuleBind",
    "ModuleRef",
    "RULES",
    "Rule",
    "ScanResult",
    "Severity",
    "Span",
    "UnitRisk",
    "UseDefAnalysis",
    "analyze_project",
    "binding_key",
    "cascade_report",
    "render_json",
    "render_text",
    "rule",
    "run_rules",
    "scan_module_refs",
    "split_binding_key",
    "uses_from_mentions",
]
