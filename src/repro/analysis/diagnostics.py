"""The diagnostic model of the static analyzer ("smlint").

A :class:`Diagnostic` is one finding: a stable code (``SC001``...), a
severity, the unit it was found in, a source span (1-based line/col,
taken from the lexer's :class:`repro.lang.tokens.Token` positions), a
message, and an optional fix suggestion.  Two renderers are provided:

- :func:`render_text` -- compiler-style ``unit:line:col`` lines for
  humans, plus the cascade-risk table and a summary;
- :func:`render_json` -- a schema-stable JSON document (``smlint/1``)
  for CI consumers; its key sets are locked by tests so downstream
  parsers do not break silently.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass

#: Version tag of the JSON output; bump only with a migration note.
SCHEMA = "smlint/1"


class Severity(enum.IntEnum):
    """Ordered severity levels (comparisons follow gravity)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}; expected one of "
                             f"{[str(s) for s in cls]}") from None


@dataclass(frozen=True)
class Span:
    """A 1-based source region; a zero-width span marks a single point."""

    line: int = 1
    col: int = 1
    end_line: int = 0
    end_col: int = 0

    def __post_init__(self):
        if self.end_line == 0:
            object.__setattr__(self, "end_line", self.line)
        if self.end_col == 0:
            object.__setattr__(self, "end_col", self.col)

    @classmethod
    def of_token(cls, token) -> "Span":
        return cls(token.line, token.col,
                   token.line, token.col + len(token.text))


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    unit: str
    span: Span
    message: str
    fix: str | None = None

    def sort_key(self):
        return (self.unit, self.span.line, self.span.col, self.code,
                self.message)

    def render_text(self) -> str:
        head = (f"{self.unit}:{self.span.line}:{self.span.col}: "
                f"{self.severity}[{self.code}]: {self.message}")
        if self.fix:
            head += f"\n    fix: {self.fix}"
        return head

    def as_json(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "unit": self.unit,
            "line": self.span.line,
            "col": self.span.col,
            "end_line": self.span.end_line,
            "end_col": self.span.end_col,
            "message": self.message,
            "fix": self.fix,
        }


def summarize(diagnostics) -> dict:
    """Severity histogram (all levels always present -- schema stability)."""
    counts = {str(sev): 0 for sev in sorted(Severity, reverse=True)}
    for diag in diagnostics:
        counts[str(diag.severity)] += 1
    counts["total"] = len(diagnostics)
    return counts


def render_text(diagnostics, cascade=None, top: int = 5) -> str:
    """Human-readable report: findings, cascade table, summary line."""
    lines = [d.render_text() for d in sorted(diagnostics,
                                             key=Diagnostic.sort_key)]
    if cascade is not None and cascade.ranking:
        lines.append("")
        lines.append(cascade.render_text(top=top))
    counts = summarize(diagnostics)
    if counts["total"]:
        lines.append(f"{counts['error']} error(s), "
                     f"{counts['warning']} warning(s), "
                     f"{counts['info']} info(s)")
    else:
        lines.append("no diagnostics")
    return "\n".join(lines)


def render_json(diagnostics, cascade=None, project: str = "") -> str:
    """Schema-stable JSON document (see :data:`SCHEMA`)."""
    payload = {
        "schema": SCHEMA,
        "project": project,
        "diagnostics": [d.as_json() for d in sorted(diagnostics,
                                                    key=Diagnostic.sort_key)],
        "summary": summarize(diagnostics),
        "cascade": cascade.as_json() if cascade is not None else None,
    }
    return json.dumps(payload, indent=2)
