"""Cascade-risk metrics over the dependency DAG.

The paper's cost model (§2) is that an interface edit recompiles every
transitive dependent unless a cutoff stops the cascade.  The exposure of
a unit is therefore measured by (a) how many units its edits can reach
-- its transitive-dependent count -- and (b) how concentrated the
demand on its interface is: per-binding *fan-in*, counted from the
dependency graph's per-name use map (:attr:`repro.cm.depend.DepGraph.uses`,
the smart builder's data).  Units with high reach are "hot interfaces":
the places where a missing ascription or a spurious edge hurts most.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cm.depend import DepGraph


@dataclass
class UnitRisk:
    """One unit's cascade exposure."""

    unit: str
    direct_dependents: int
    transitive_dependents: int
    #: "ns:name" -> number of distinct dependent units using that binding.
    fan_in: dict[str, int]

    def hottest(self) -> tuple[str, int] | None:
        """The exported binding with the highest fan-in."""
        if not self.fan_in:
            return None
        key = max(sorted(self.fan_in), key=lambda k: self.fan_in[k])
        return key, self.fan_in[key]

    def as_json(self) -> dict:
        return {
            "unit": self.unit,
            "direct_dependents": self.direct_dependents,
            "transitive_dependents": self.transitive_dependents,
            "fan_in": {k: self.fan_in[k] for k in sorted(self.fan_in)},
        }


@dataclass
class CascadeReport:
    """Units ranked by transitive-dependent count (descending, then by
    name) -- the order in which interface edits are most expensive."""

    ranking: list[UnitRisk]

    def risk_of(self, unit: str) -> UnitRisk | None:
        for risk in self.ranking:
            if risk.unit == unit:
                return risk
        return None

    def render_text(self, top: int = 5) -> str:
        total = len(self.ranking)
        lines = [f"cascade risk (top {min(top, total)} of {total} units):"]
        for risk in self.ranking[:top]:
            line = (f"  {risk.unit:<16} {risk.transitive_dependents} "
                    f"transitive / {risk.direct_dependents} direct "
                    f"dependents")
            hot = risk.hottest()
            if hot is not None:
                key, count = hot
                line += f"; hottest binding {key} ({count} users)"
            lines.append(line)
        return "\n".join(lines)

    def as_json(self) -> dict:
        return {"ranking": [risk.as_json() for risk in self.ranking]}


def cascade_report(graph: DepGraph) -> CascadeReport:
    """Compute the report from an already-built dependency graph.

    ``transitive_dependents`` agrees with
    :meth:`DepGraph.transitive_dependents` by construction (it calls it).
    """
    fan_in: dict[str, dict[str, int]] = {}
    for _user, per_provider in graph.uses.items():
        for provider, keys in per_provider.items():
            counts = fan_in.setdefault(provider, {})
            for key in keys:
                counts[key] = counts.get(key, 0) + 1

    risks = [
        UnitRisk(
            unit=unit,
            direct_dependents=len(graph.dependents.get(unit, ())),
            transitive_dependents=len(graph.transitive_dependents(unit)),
            fan_in=fan_in.get(unit, {}),
        )
        for unit in graph.deps
    ]
    risks.sort(key=lambda r: (-r.transitive_dependents, r.unit))
    return CascadeReport(risks)
