"""The built-in rules (codes SC001-SC006).

Every rule is grounded in the paper's cost model: transparent signature
matching makes *all* of an implementation's details interface, so each
spurious edge, over-broad import or unascribed export widens the set of
units an edit recompiles.  The rules find exactly those cascade
amplifiers.  SC000 (analysis failure) is emitted by the runner, not
registered here.
"""

from __future__ import annotations

from math import ceil

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity, Span
from repro.analysis.registry import rule

_SINGULAR = {"structures": "structure", "signatures": "signature",
             "functors": "functor"}


def _exported_decs(decs):
    """Top-level declarations contributing to the unit's export,
    looking through ``local ... in ... end``."""
    from repro.lang import ast

    for dec in decs:
        if isinstance(dec, ast.LocalDec):
            yield from _exported_decs(dec.public)
        else:
            yield dec


@rule("SC001", "false-dependency-name",
      "a conservative mention widens a real dependency edge although "
      "every reference to the name is locally bound")
def false_dependency_names(ctx: AnalysisContext):
    """The dependency analyzer is conservative (it only subtracts
    top-level definitions), so a nested binding that happens to share a
    provider's name charges this unit with using a binding the program
    never exercises -- widening the per-binding recompilation surface of
    an edge that does exist.  Edges that are *entirely* spurious are
    SC006's territory; SC001 reports only the false names on partly-real
    edges."""
    usedef = ctx.usedef()
    for unit in ctx.units:
        scan = ctx.scan(unit)
        escaping = scan.escaping()
        whole_spurious = set(usedef.unused_imports(unit))
        for provider in sorted(ctx.graph.uses.get(unit, {})):
            if provider in whole_spurious:
                continue  # SC006 reports the whole edge
            for key in sorted(ctx.graph.uses[unit][provider]):
                ns, _, name = key.partition(":")
                if (ns, name) in escaping:
                    continue
                ref = scan.first_ref(ns, name)
                span = ctx.span_of(unit, name,
                                   ref.line if ref else None)
                yield Diagnostic(
                    "SC001", Severity.WARNING, unit, span,
                    f"every reference to {_SINGULAR[ns]} '{name}' is "
                    f"locally bound, yet the mention charges this unit "
                    f"with using it from unit '{provider}'",
                    fix=f"rename the local '{name}' so the dependency "
                        f"analyzer stops charging this unit for "
                        f"'{provider}' edits")


@rule("SC002", "over-broad-open",
      "an `open` of another unit's structure imports its entire "
      "interface")
def over_broad_open(ctx: AnalysisContext):
    """``open`` makes every binding of the provider part of this unit's
    compilation environment, maximizing the surface through which an
    interface edit can (appear to) matter."""
    for unit in ctx.units:
        for ref in ctx.scan(unit).refs:
            if ref.kind != "open" or ref.resolved:
                continue
            provider = ctx.providers().get(("structures", ref.name))
            if provider is None or provider == unit:
                continue
            span = ctx.span_of(unit, ref.name, ref.line)
            yield Diagnostic(
                "SC002", Severity.WARNING, unit, span,
                f"'open {ref.name}' imports every binding of unit "
                f"'{provider}', widening the recompilation surface to "
                f"the provider's whole interface",
                fix=f"use qualified names ({ref.name}.x) or open a "
                    f"structure thinned by a signature ascription")


@rule("SC003", "unascribed-export",
      "a module is exported without a signature ascription, so its "
      "full implementation is its interface")
def unascribed_exports(ctx: AnalysisContext):
    """The paper's motivating hazard: with transparent matching, an
    unascribed export leaks every type identity and auxiliary binding
    into dependents, so implementation-only edits still change the
    interface pid and defeat the cutoff."""
    from repro.lang import ast

    for unit in ctx.units:
        for dec in _exported_decs(ctx.decs(unit)):
            if isinstance(dec, ast.StructureDec):
                for binding in dec.bindings:
                    span = ctx.span_of(unit, binding.name, binding.line)
                    if binding.sig is None:
                        yield Diagnostic(
                            "SC003", Severity.WARNING, unit, span,
                            f"structure '{binding.name}' is exported "
                            f"without a signature ascription; its whole "
                            f"implementation becomes interface, so any "
                            f"edit recompiles every dependent",
                            fix=f"ascribe an opaque signature: "
                                f"structure {binding.name} :> SIG = ...")
                    elif not binding.opaque:
                        yield Diagnostic(
                            "SC003", Severity.INFO, unit, span,
                            f"structure '{binding.name}' uses transparent "
                            f"ascription (:), which still leaks type "
                            f"identities through the signature",
                            fix="use opaque ascription (:>) for a "
                                "cutoff-stable interface")
            elif isinstance(dec, ast.FunctorDec):
                for binding in dec.bindings:
                    if binding.result_sig is not None:
                        continue
                    span = ctx.span_of(unit, binding.name, binding.line)
                    yield Diagnostic(
                        "SC003", Severity.WARNING, unit, span,
                        f"functor '{binding.name}' has no result "
                        f"signature; every application re-exports the "
                        f"full body interface",
                        fix=f"constrain the result: functor "
                            f"{binding.name}(...) : SIG = ...")


@rule("SC004", "duplicate-or-shadowed-binding",
      "a module binding duplicates a top-level sibling or shadows "
      "another unit's export")
def duplicate_or_shadowed(ctx: AnalysisContext):
    """A top-level rebinding makes the earlier binding dead in the
    unit's interface; a nested binding that reuses an imported module's
    name makes references resolve locally -- the direct source of SC001
    false edges and of reader confusion about which module is meant."""
    for unit in ctx.units:
        seen_top: dict[tuple[str, str], int] = {}
        for bind in ctx.scan(unit).binds:
            key = (bind.ns, bind.name)
            if bind.depth == 0 and bind.kind == "top":
                if key in seen_top:
                    span = ctx.span_of(unit, bind.name, bind.line)
                    yield Diagnostic(
                        "SC004", Severity.WARNING, unit, span,
                        f"{_SINGULAR[bind.ns]} '{bind.name}' is bound "
                        f"twice at the top level (first at line "
                        f"{seen_top[key]}); the first binding is dead "
                        f"in the unit's interface",
                        fix="rename or remove one of the bindings")
                seen_top[key] = bind.line
            elif bind.kind in ("nested", "param"):
                owner = ctx.providers().get(key)
                if owner is not None and owner != unit:
                    span = ctx.span_of(unit, bind.name, bind.line)
                    role = ("functor parameter" if bind.kind == "param"
                            else f"local {_SINGULAR[bind.ns]}")
                    yield Diagnostic(
                        "SC004", Severity.WARNING, unit, span,
                        f"{role} '{bind.name}' shadows the "
                        f"{_SINGULAR[bind.ns]} exported by unit "
                        f"'{owner}'; references here resolve locally "
                        f"while the dependency analyzer still sees a "
                        f"mention of '{owner}'",
                        fix=f"rename '{bind.name}' to keep inter-unit "
                            f"references unambiguous")


@rule("SC005", "hot-interface",
      "editing this unit's interface recompiles a large share of the "
      "project", Severity.INFO)
def hot_interfaces(ctx: AnalysisContext):
    """Rank units by transitive-dependent count (the cascade the paper
    bounds with cutoffs) and flag those whose edits reach a large share
    of the project; the per-binding fan-in from DepGraph.uses names the
    hottest binding."""
    report = ctx.cascade()
    others = max(len(ctx.units) - 1, 1)
    threshold = max(ctx.config.hot_min_dependents,
                    ceil(ctx.config.hot_ratio * others))
    for risk in report.ranking:
        if risk.transitive_dependents < threshold:
            break  # ranking is sorted by reach, descending
        message = (f"editing unit '{risk.unit}' recompiles "
                   f"{risk.transitive_dependents} of {others} other "
                   f"units ({risk.direct_dependents} direct "
                   f"dependents)")
        span = Span()
        hot = risk.hottest()
        if hot is not None:
            key, count = hot
            ns, _, name = key.partition(":")
            message += (f"; hottest binding is {_SINGULAR[ns]} "
                        f"'{name}' ({count} direct users)")
            for bind in ctx.scan(risk.unit).binds:
                if bind.depth == 0 and (bind.ns, bind.name) == (ns, name):
                    span = ctx.span_of(risk.unit, name, bind.line)
                    break
        yield Diagnostic(
            "SC005", Severity.INFO, risk.unit, span, message,
            fix="keep this interface ascribed and stable, or split "
                "rarely-used bindings into a separate unit")


@rule("SC006", "unused-import",
      "a dependency edge none of whose referenced bindings actually "
      "escapes -- the whole import is spurious")
def unused_imports(ctx: AnalysisContext):
    """The whole-edge case of SC001: *every* mention that creates the
    edge is locally bound, so the unit does not use the provider at all
    -- yet each provider interface edit recompiles it (the per-binding
    cutoff cannot help either: the recorded use-set is exactly the
    conservative one).  Computed from the shared
    :class:`~repro.analysis.scopes.UseDefAnalysis`, so the lint verdict
    and the build's recorded ``used_bindings`` can never disagree."""
    usedef = ctx.usedef()
    for unit in ctx.units:
        scan = ctx.scan(unit)
        for provider in usedef.unused_imports(unit):
            keys = sorted(ctx.graph.uses[unit][provider])
            names = []
            span = None
            for key in keys:
                ns, _, name = key.partition(":")
                names.append(f"{_SINGULAR[ns]} '{name}'")
                if span is None:
                    ref = scan.first_ref(ns, name)
                    span = ctx.span_of(unit, name,
                                       ref.line if ref else None)
            yield Diagnostic(
                "SC006", Severity.WARNING, unit, span or Span(),
                f"the dependency edge on unit '{provider}' is entirely "
                f"spurious: every referenced binding "
                f"({', '.join(names)}) is locally bound, yet each "
                f"'{provider}' interface edit still recompiles this "
                f"unit",
                fix=f"rename the shadowing local binding(s) so the "
                    f"edge on '{provider}' disappears from the "
                    f"dependency graph")
