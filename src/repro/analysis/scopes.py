"""Scope-aware module-name resolution inside one compilation unit.

The dependency analyzer's free-name pass
(:mod:`repro.lang.freevars`) is deliberately conservative: it records
every module-level name mentioned anywhere in a unit, subtracting only
the unit's *top-level* definitions.  A nested ``structure Util = ...``
inside a struct body, a functor parameter, or a ``local`` binding can
therefore manufacture a dependency edge on another unit that happens to
export the same name -- a *false* edge that widens every recompilation
cascade through it.

This module does the precise version of that analysis: it walks the AST
with an actual scope stack, recording

- every reference to a module-namespace name (structures, signatures,
  functors) together with whether it resolved to a binding *inside* the
  unit, and
- every binding event with its scope depth,

so rules can compare conservative mentions against precise resolution
(SC001), spot shadowing (SC004), and attribute ``open`` declarations
(SC002).  It never parses: it consumes the declarations already parsed
by :func:`repro.cm.depend.analyze`.

:class:`UseDefAnalysis` packages both views for a whole project: per
unit, the set of exported module-level bindings (the *def* set) and the
set of ``(import_unit, binding)`` pairs the unit references (the *use*
set) -- conservatively (the dependency analyzer's view, via
:func:`uses_from_mentions`, which :func:`repro.cm.depend.analyze` shares)
and precisely (only escaping references).  The build's per-binding
cutoff and smlint's SC001/SC006 rules both consume it, so "what does
this unit actually use?" has exactly one answer in the system.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.lang import ast
from repro.lang.freevars import (MODULE_NAMESPACES, Mentions,
                                 defined_module_names,
                                 module_level_mentions)


@dataclass(frozen=True)
class ModuleRef:
    """A reference to a module-level name.

    ``kind`` is the syntactic role: ``open``, ``strexp`` (a structure
    expression), ``functor-app``, ``sig-ref``, or ``qualified`` (the
    head of a long identifier such as ``A.x``).  ``resolved`` is True
    when the name was bound inside the unit at the reference point.
    """

    ns: str
    name: str
    line: int
    kind: str
    resolved: bool


@dataclass(frozen=True)
class ModuleBind:
    """A binding of a module-level name.

    ``depth`` is 0 for the unit's top level; ``kind`` is ``top``,
    ``nested``, ``param`` (functor parameter), or ``spec`` (inside a
    signature expression).
    """

    ns: str
    name: str
    line: int
    depth: int
    kind: str


@dataclass
class ScanResult:
    refs: list[ModuleRef]
    binds: list[ModuleBind]

    def escaping(self) -> set[tuple[str, str]]:
        """The (ns, name) pairs referenced without a local binding --
        the unit's *actual* inter-unit demands."""
        return {(r.ns, r.name) for r in self.refs if not r.resolved}

    def first_ref(self, ns: str, name: str) -> ModuleRef | None:
        for ref in self.refs:
            if ref.ns == ns and ref.name == name:
                return ref
        return None


def scan_module_refs(decs: list[ast.Dec]) -> ScanResult:
    """Scan a unit's parsed declarations; see the module docstring."""
    scanner = _Scanner()
    scanner.visit(decs)
    return ScanResult(scanner.refs, scanner.binds)


class _Scanner:
    def __init__(self):
        self.frames = [self._frame()]
        self.refs: list[ModuleRef] = []
        self.binds: list[ModuleBind] = []

    @staticmethod
    def _frame():
        return {ns: set() for ns in MODULE_NAMESPACES}

    # -- scope primitives -------------------------------------------------

    def push(self) -> None:
        self.frames.append(self._frame())

    def pop(self) -> None:
        self.frames.pop()

    @property
    def depth(self) -> int:
        return len(self.frames) - 1

    def bind(self, ns: str, name: str, line: int, kind: str) -> None:
        self.frames[-1][ns].add(name)
        self.binds.append(ModuleBind(ns, name, line, self.depth, kind))

    def _is_bound(self, ns: str, name: str) -> bool:
        return any(name in frame[ns] for frame in self.frames)

    def ref(self, ns: str, name: str, line: int, kind: str) -> None:
        self.refs.append(
            ModuleRef(ns, name, line, kind, self._is_bound(ns, name)))

    def _ref_head(self, path: ast.Path, line: int) -> None:
        """A qualified long identifier mentions its head structure."""
        if len(path) > 1:
            self.ref("structures", path[0], line, "qualified")

    # -- traversal --------------------------------------------------------

    def visit(self, node) -> None:
        if isinstance(node, (list, tuple)):
            for item in node:
                self.visit(item)
            return
        if not dataclasses.is_dataclass(node) or isinstance(node, type):
            return
        handler = _HANDLERS.get(type(node))
        if handler is not None:
            handler(self, node)
        else:
            self.children(node)

    def children(self, node) -> None:
        for f in dataclasses.fields(node):
            self.visit(getattr(node, f.name))

    # -- declarations that bind module names ------------------------------

    def structure_dec(self, dec: ast.StructureDec) -> None:
        kind = "top" if self.depth == 0 else "nested"
        for binding in dec.bindings:  # simultaneous ('and') bindings
            if binding.sig is not None:
                self.visit(binding.sig)
            self.visit(binding.body)
        for binding in dec.bindings:
            self.bind("structures", binding.name, binding.line, kind)

    def signature_dec(self, dec: ast.SignatureDec) -> None:
        kind = "top" if self.depth == 0 else "nested"
        for _name, sig in dec.bindings:
            self.visit(sig)
        for name, _sig in dec.bindings:
            self.bind("signatures", name, dec.line, kind)

    def functor_dec(self, dec: ast.FunctorDec) -> None:
        kind = "top" if self.depth == 0 else "nested"
        for binding in dec.bindings:
            self.push()
            if binding.fct_param is not None:
                fp = binding.fct_param
                self.visit(fp.param_sig)
                self.bind("functors", fp.name, fp.line, "param")
                self.visit(fp.result_sig)
            else:
                if binding.param_sig is not None:
                    self.visit(binding.param_sig)
                if binding.param_name:
                    self.bind("structures", binding.param_name,
                              binding.line, "param")
            if binding.result_sig is not None:
                self.visit(binding.result_sig)
            self.visit(binding.body)
            self.pop()
        for binding in dec.bindings:
            self.bind("functors", binding.name, binding.line, kind)

    def local_dec(self, dec: ast.LocalDec) -> None:
        self.push()
        self.visit(dec.private)
        self.visit(dec.public)
        self.pop()
        # The public bindings stay visible to the rest of the enclosing
        # scope; re-export them without fresh binding events.
        for ns, names in defined_module_names(dec.public).items():
            self.frames[-1][ns] |= names

    # -- scoping constructs ------------------------------------------------

    def _scoped(self, *parts) -> None:
        self.push()
        for part in parts:
            self.visit(part)
        self.pop()

    def struct_strexp(self, node: ast.StructStrExp) -> None:
        self._scoped(node.decs)

    def let_strexp(self, node: ast.LetStrExp) -> None:
        self._scoped(node.decs, node.body)

    def let_exp(self, node: ast.LetExp) -> None:
        self._scoped(node.decs, node.body)

    def sig_sigexp(self, node: ast.SigSigExp) -> None:
        self._scoped(node.specs)

    def structure_spec(self, node: ast.StructureSpec) -> None:
        for _name, sig in node.bindings:
            self.visit(sig)
        for name, _sig in node.bindings:
            self.bind("structures", name, node.line, "spec")

    # -- references --------------------------------------------------------

    def var_strexp(self, node: ast.VarStrExp) -> None:
        self.ref("structures", node.path[0], node.line, "strexp")

    def app_strexp(self, node: ast.AppStrExp) -> None:
        path = node.functor_path
        if len(path) > 1:
            self._ref_head(path, node.line)
        else:
            self.ref("functors", path[0], node.line, "functor-app")
        self.visit(node.arg)

    def var_sigexp(self, node: ast.VarSigExp) -> None:
        self.ref("signatures", node.name, node.line, "sig-ref")

    def open_dec(self, node: ast.OpenDec) -> None:
        for path in node.paths:
            self.ref("structures", path[0], node.line, "open")

    def var_exp(self, node: ast.VarExp) -> None:
        self._ref_head(node.path, node.line)

    def con_pat(self, node: ast.ConPat) -> None:
        self._ref_head(node.path, node.line)
        self.visit(node.arg)

    def con_ty(self, node: ast.ConTy) -> None:
        self._ref_head(node.path, node.line)
        self.visit(node.args)

    def datatype_repl_dec(self, node: ast.DatatypeReplDec) -> None:
        self._ref_head(node.path, node.line)

    def where_type_sigexp(self, node: ast.WhereTypeSigExp) -> None:
        self.visit(node.base)
        self._ref_head(node.path, node.line)
        self.visit(node.ty)

    def sharing_spec(self, node: ast.SharingSpec) -> None:
        for path in node.paths:
            self._ref_head(path, node.line)

    def exception_dec(self, node: ast.ExceptionDec) -> None:
        for _name, ty, alias in node.bindings:
            self.visit(ty)
            if alias is not None:
                self._ref_head(alias, node.line)


# -- use/def sets --------------------------------------------------------


def binding_key(ns: str, name: str) -> str:
    """The canonical ``"ns:name"`` spelling of a module-level binding --
    the key format of ``DepGraph.uses``, of bin-record ``binding_pids``
    / ``used_bindings``, and of the ledger's binding checks."""
    return f"{ns}:{name}"


def split_binding_key(key: str) -> tuple[str, str]:
    """Inverse of :func:`binding_key`."""
    ns, _, name = key.partition(":")
    return ns, name


def uses_from_mentions(mentions: Mentions, providers: dict[str, str],
                       self_name: str) -> dict[str, set[str]]:
    """The conservative use-set: provider unit -> the binding keys of
    ``providers`` that ``mentions`` references.

    ``providers`` maps a module-level name to its defining unit (the
    dependency analyzer's provider table); mentions resolving to
    ``self_name`` are dropped (a unit does not use itself).  This is THE
    use-set computation: :func:`repro.cm.depend.analyze` derives both
    the dependency edges and ``DepGraph.uses`` from it, and
    :class:`UseDefAnalysis` re-exposes it to the lint rules, so the
    build and the analyzer can never disagree about what a unit uses.
    """
    uses: dict[str, set[str]] = {}
    for ns in MODULE_NAMESPACES:
        for module_name in getattr(mentions, ns):
            provider = providers.get(module_name)
            if provider is not None and provider != self_name:
                uses.setdefault(provider, set()).add(
                    binding_key(ns, module_name))
    return uses


class UseDefAnalysis:
    """Use/def sets over a project of already-parsed units.

    Construct from ``{unit: parsed declarations}`` (or
    :meth:`of_graph` from a :class:`~repro.cm.depend.DepGraph`).  All
    results are memoized; the analysis never parses.
    """

    def __init__(self, decs_by_unit: dict[str, list[ast.Dec]]):
        self.decs_by_unit = decs_by_unit
        self._exports: dict[str, set[tuple[str, str]]] = {}
        self._scans: dict[str, ScanResult] = {}
        self._uses: dict[str, dict[str, set[str]]] = {}
        self._providers: dict[tuple[str, str], str] | None = None

    @classmethod
    def of_graph(cls, graph) -> "UseDefAnalysis":
        return cls(dict(graph.parsed))

    @property
    def units(self) -> list[str]:
        return list(self.decs_by_unit)

    # -- def sets ---------------------------------------------------------

    def exports(self, unit: str) -> set[tuple[str, str]]:
        """The (ns, name) pairs ``unit``'s top level defines -- the
        bindings that make up its exported interface."""
        out = self._exports.get(unit)
        if out is None:
            defined = defined_module_names(self.decs_by_unit[unit])
            out = {(ns, name) for ns, names in defined.items()
                   for name in names}
            self._exports[unit] = out
        return out

    def providers(self) -> dict[tuple[str, str], str]:
        """(ns, name) -> the unit whose top level defines it."""
        if self._providers is None:
            self._providers = {}
            for unit in self.units:
                for ns, name in self.exports(unit):
                    self._providers[(ns, name)] = unit
        return self._providers

    # -- use sets ---------------------------------------------------------

    def scan(self, unit: str) -> ScanResult:
        scan = self._scans.get(unit)
        if scan is None:
            scan = self._scans[unit] = scan_module_refs(
                self.decs_by_unit[unit])
        return scan

    def used_keys(self, unit: str) -> dict[str, set[str]]:
        """Conservative use-set as provider -> binding keys (the same
        map :func:`repro.cm.depend.analyze` records in
        ``DepGraph.uses``)."""
        out = self._uses.get(unit)
        if out is None:
            name_providers = {name: owner for (_ns, name), owner
                              in self.providers().items()}
            out = uses_from_mentions(
                module_level_mentions(self.decs_by_unit[unit]),
                name_providers, unit)
            self._uses[unit] = out
        return out

    def uses(self, unit: str) -> set[tuple[str, str]]:
        """Conservative ``(import_unit, binding_key)`` pairs."""
        return {(provider, key)
                for provider, keys in self.used_keys(unit).items()
                for key in keys}

    def precise_uses(self, unit: str) -> set[tuple[str, str]]:
        """The scope-aware subset of :meth:`uses`: pairs whose name
        actually escapes (is referenced without a local binding)."""
        escaping = self.scan(unit).escaping()
        return {(provider, key) for provider, key in self.uses(unit)
                if split_binding_key(key) in escaping}

    def unused_imports(self, unit: str) -> list[str]:
        """Import units the conservative analysis charges ``unit`` with
        but whose precise use-set is empty -- every mention creating the
        edge is locally bound, so the whole edge is spurious (SC006)."""
        genuinely_used = {provider
                          for provider, _key in self.precise_uses(unit)}
        return sorted(set(self.used_keys(unit)) - genuinely_used)


_HANDLERS = {
    ast.StructureDec: _Scanner.structure_dec,
    ast.SignatureDec: _Scanner.signature_dec,
    ast.FunctorDec: _Scanner.functor_dec,
    ast.LocalDec: _Scanner.local_dec,
    ast.StructStrExp: _Scanner.struct_strexp,
    ast.LetStrExp: _Scanner.let_strexp,
    ast.LetExp: _Scanner.let_exp,
    ast.SigSigExp: _Scanner.sig_sigexp,
    ast.StructureSpec: _Scanner.structure_spec,
    ast.VarStrExp: _Scanner.var_strexp,
    ast.AppStrExp: _Scanner.app_strexp,
    ast.VarSigExp: _Scanner.var_sigexp,
    ast.OpenDec: _Scanner.open_dec,
    ast.VarExp: _Scanner.var_exp,
    ast.ConPat: _Scanner.con_pat,
    ast.ConTy: _Scanner.con_ty,
    ast.DatatypeReplDec: _Scanner.datatype_repl_dec,
    ast.WhereTypeSigExp: _Scanner.where_type_sigexp,
    ast.SharingSpec: _Scanner.sharing_spec,
    ast.ExceptionDec: _Scanner.exception_dec,
}
