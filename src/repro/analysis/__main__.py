"""Command-line analyzer: ``python -m repro.analysis <srcdir|group.cm>``.

Runs every registered rule over a directory of ``*.sml`` units or a
``.cm`` group description (including its imports) and prints the
diagnostics plus the cascade-risk ranking.

Options:
    --format {text,json}   output format (json is schema-stable, smlint/1)
    --strict               exit 1 when diagnostics at/above --fail-on exist
    --fail-on LEVEL        gating level for --strict (default warning)
    --rules CODES          comma-separated rule subset (e.g. SC001,SC003)
    --top N                rows in the cascade table (default 5)
    --no-cascade           omit the cascade-risk report
    --hot-min N            SC005: minimum transitive dependents (default 3)

Exit codes: 0 clean (or not gated), 1 gated diagnostics or analysis
failure, 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.context import AnalysisConfig
from repro.analysis.diagnostics import Severity, render_json, render_text
from repro.analysis.runner import analyze_project
from repro.cm.project import Project


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis over a project's dependency DAG: "
                    "dependency lints and cascade-risk metrics.")
    parser.add_argument("target",
                        help="directory containing *.sml units, or a .cm "
                             "group description file")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when gated diagnostics exist")
    parser.add_argument("--fail-on", default="warning",
                        choices=("info", "warning", "error"),
                        help="minimum severity that gates --strict")
    parser.add_argument("--rules", metavar="CODES",
                        help="comma-separated rule codes to run")
    parser.add_argument("--top", type=int, default=5,
                        help="rows in the cascade-risk table")
    parser.add_argument("--no-cascade", action="store_true")
    parser.add_argument("--hot-min", type=int, default=3,
                        help="SC005 minimum transitive-dependent count")
    args = parser.parse_args(argv)

    project = _load_target(args.target)
    if project is None:
        return 2

    codes = None
    if args.rules is not None:
        codes = tuple(code.strip() for code in args.rules.split(",")
                      if code.strip())
        if not codes:
            # A typo like --rules "," must not silently lint nothing.
            print("error: --rules needs at least one code (e.g. SC001)",
                  file=sys.stderr)
            return 2
    config = AnalysisConfig(hot_min_dependents=args.hot_min, codes=codes)
    try:
        result = analyze_project(project, config=config)
    except ValueError as err:  # unknown rule code
        print(f"error: {err}", file=sys.stderr)
        return 2

    cascade = None if args.no_cascade else result.cascade
    if args.format == "json":
        print(render_json(result.diagnostics, cascade,
                          project=args.target))
    else:
        print(render_text(result.diagnostics, cascade, top=args.top))

    if result.failed:
        return 1
    if args.strict and result.gate(Severity.parse(args.fail_on)):
        return 1
    return 0


def _load_target(target: str) -> Project | None:
    if os.path.isfile(target) and target.endswith(".cm"):
        from repro.cm.descfile import DescFileError, load_group_file

        try:
            _group, project = load_group_file(target)
        except DescFileError as err:
            print(f"error: {err}", file=sys.stderr)
            return None
        return project
    if not os.path.isdir(target):
        print(f"error: {target} is not a directory or .cm file",
              file=sys.stderr)
        return None
    project = Project.from_directory(target)
    if not len(project):
        print(f"error: no .sml files in {target}", file=sys.stderr)
        return None
    return project


if __name__ == "__main__":
    sys.exit(main())
