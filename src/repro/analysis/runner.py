"""Top-level entry point: run all rules over a project.

:func:`analyze_project` is the one call everything else (the CLI, the
``--analyze`` build flag, tests) goes through.  It reuses an existing
dependency graph when the caller has one (e.g. a builder's
``last_graph``) and otherwise runs :func:`repro.cm.depend.analyze`
itself -- against the caller's dependency cache when provided, so the
single parse that dependency analysis already did is the only parse
this analyzer ever costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cascade import CascadeReport
from repro.analysis.context import AnalysisConfig, AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity, Span
from repro.analysis.registry import run_rules
from repro.cm.depend import DependencyError, DepGraph, analyze
from repro.cm.project import Project
from repro.lang.errors import SourceError


@dataclass
class AnalysisResult:
    diagnostics: list[Diagnostic]
    cascade: CascadeReport | None = None
    graph: DepGraph | None = None
    config: AnalysisConfig = field(default_factory=AnalysisConfig)

    @property
    def failed(self) -> bool:
        """True when the project could not even be analyzed (SC000)."""
        return self.graph is None

    def gate(self, fail_on: Severity = Severity.WARNING) -> bool:
        """Should a --strict run fail?"""
        return any(d.severity >= fail_on for d in self.diagnostics)


def analyze_project(project: Project, graph: DepGraph | None = None,
                    cache: dict | None = None,
                    config: AnalysisConfig | None = None) -> AnalysisResult:
    """Run the static analyzer over ``project``.

    Args:
        project: the sources.
        graph: an already-built dependency graph (skips re-analysis).
        cache: a dependency cache to share with ``depend.analyze`` (a
            builder's ``_dep_cache``); with a warm cache the analyzer
            performs no parsing at all.
        config: rule tunables and an optional rule-code subset.
    """
    config = config if config is not None else AnalysisConfig()
    if graph is None:
        try:
            graph = analyze(project, cache=cache)
        except DependencyError as err:
            return AnalysisResult(
                [_failure(f"dependency analysis failed: {err}")],
                config=config)
        except SourceError as err:
            return AnalysisResult(
                [_failure(f"parse failed: {err}",
                          Span(err.line or 1, err.col or 1))],
                config=config)
    ctx = AnalysisContext(project, graph, config)
    diagnostics = run_rules(ctx, config.codes)
    return AnalysisResult(diagnostics, cascade=ctx.cascade(), graph=graph,
                          config=config)


def _failure(message: str, span: Span | None = None) -> Diagnostic:
    return Diagnostic("SC000", Severity.ERROR, "<project>",
                      span if span is not None else Span(), message)
