"""Token kinds and the token record produced by the lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokKind(Enum):
    """Lexical classes of the SML subset."""

    # Literals.
    INT = auto()        # 42, ~7, 0x1F
    WORD = auto()       # 0w255
    REAL = auto()       # 3.14, 1e10, ~2.5e~3
    STRING = auto()     # "abc"
    CHAR = auto()       # #"a"

    # Names.
    ID = auto()         # alphanumeric identifier (possibly a keyword -- no)
    SYMID = auto()      # symbolic identifier: +, <=, :=, ...
    TYVAR = auto()      # 'a, ''a

    # Reserved words get their own kinds via the KEYWORDS table but are
    # carried as kind=KEYWORD with text distinguishing them.
    KEYWORD = auto()

    # Punctuation that is reserved (never an identifier).
    LPAREN = auto()
    RPAREN = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    LBRACE = auto()
    RBRACE = auto()
    COMMA = auto()
    SEMICOLON = auto()
    DOT = auto()
    DOTDOTDOT = auto()
    UNDERSCORE = auto()

    EOF = auto()


#: Alphabetic reserved words of the subset.  ``=``, ``=>``, ``->``, ``|``,
#: ``:``, ``:>``, ``#`` and ``*`` are symbolic but also reserved; the lexer
#: emits them as KEYWORD tokens too so the parser has one namespace for
#: reserved tokens.
KEYWORDS = frozenset(
    """
    abstype and andalso as case datatype do else end eqtype exception fn
    fun functor handle if in include infix infixr let local nonfix of op
    open orelse raise rec sharing sig signature struct structure then type
    val where while with withtype
    """.split()
)

#: Symbolic tokens that are reserved rather than ordinary operators.
RESERVED_SYMBOLIC = frozenset(["=", "=>", "->", "|", ":", ":>", "#", "*"])


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: the lexical class.
        text: the token's source text (normalized for literals).
        line: 1-based line of the first character.
        col: 1-based column of the first character.
        value: decoded value for literals (int for INT/WORD, float for
            REAL, str for STRING/CHAR); None otherwise.
    """

    kind: TokKind
    text: str
    line: int
    col: int
    value: object = None

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text == word

    def __repr__(self) -> str:  # compact, for parser error messages
        return f"{self.kind.name}({self.text!r})@{self.line}:{self.col}"
