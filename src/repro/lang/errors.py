"""Source-level error types shared by the lexer and parser."""

from __future__ import annotations


class SourceError(Exception):
    """An error attributed to a position in a source text.

    Attributes:
        message: human-readable description of the problem.
        line: 1-based source line, or 0 when unknown.
        col: 1-based source column, or 0 when unknown.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.message = message
        self.line = line
        self.col = col
        super().__init__(str(self))

    def __str__(self) -> str:
        if self.line:
            return f"{self.line}:{self.col}: {self.message}"
        return self.message


class LexError(SourceError):
    """Raised for malformed tokens (bad escapes, unterminated strings...)."""


class ParseError(SourceError):
    """Raised when the token stream does not form a valid program."""
