"""Recursive-descent parser for the Standard ML subset.

The grammar follows the Definition of Standard ML, restricted to the
subset listed in DESIGN.md.  Infix expressions and patterns are resolved
with precedence climbing against a :class:`repro.lang.ops.FixityEnv`
threaded through declaration scopes.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.ops import Fixity, FixityEnv
from repro.lang.tokens import TokKind, Token

# Tokens that can never start an atomic expression; used to stop the
# application-expression loop.
_EXP_TERMINATORS = {
    "then", "else", "do", "of", "and", "in", "end", "handle", "andalso",
    "orelse", "val", "fun", "type", "datatype", "exception", "structure",
    "signature", "functor", "local", "open", "infix", "infixr", "nonfix",
    "sharing", "where", "with", "withtype", "abstype", "eqtype", "include",
    "rec", "sig", "struct", "=", "=>", "->", "|", ":", ":>",
}


def parse_program(text: str) -> list[ast.Dec]:
    """Parse a full compilation unit: a sequence of declarations."""
    return Parser(text).program()


def parse_expression(text: str) -> ast.Exp:
    """Parse a single expression (used by the interactive loop and tests)."""
    parser = Parser(text)
    exp = parser.exp()
    parser.expect_eof()
    return exp


class Parser:
    def __init__(self, text: str):
        self.toks = tokenize(text)
        self.pos = 0
        self.fixity = FixityEnv.initial()

    # -- token plumbing ----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        i = min(self.pos + ahead, len(self.toks) - 1)
        return self.toks[i]

    def advance(self) -> Token:
        tok = self.toks[self.pos]
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def at(self, kind: TokKind) -> bool:
        return self.peek().kind is kind

    def at_kw(self, word: str) -> bool:
        return self.peek().is_keyword(word)

    def eat_kw(self, word: str) -> bool:
        if self.at_kw(word):
            self.advance()
            return True
        return False

    def eat(self, kind: TokKind) -> bool:
        if self.at(kind):
            self.advance()
            return True
        return False

    def expect(self, kind: TokKind, what: str = "") -> Token:
        if not self.at(kind):
            raise self.error(f"expected {what or kind.name}, found {self.peek()}")
        return self.advance()

    def expect_kw(self, word: str) -> Token:
        if not self.at_kw(word):
            raise self.error(f"expected '{word}', found {self.peek()}")
        return self.advance()

    def expect_eof(self) -> None:
        if not self.at(TokKind.EOF):
            raise self.error(f"unexpected {self.peek()} after end of phrase")

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message, tok.line, tok.col)

    # -- identifiers and paths ----------------------------------------------

    def ident(self, what: str = "identifier") -> str:
        """An unqualified identifier; ``op`` may prefix a symbolic one."""
        if self.eat_kw("op"):
            return self.op_ident()
        tok = self.peek()
        if tok.kind is TokKind.ID or tok.kind is TokKind.SYMID:
            self.advance()
            return tok.text
        if tok.is_keyword("*"):  # '*' is reserved but a legal value id
            self.advance()
            return "*"
        if tok.is_keyword("="):
            self.advance()
            return "="
        raise self.error(f"expected {what}, found {tok}")

    def op_ident(self) -> str:
        tok = self.peek()
        if tok.kind in (TokKind.ID, TokKind.SYMID):
            self.advance()
            return tok.text
        if tok.is_keyword("*") or tok.is_keyword("="):
            self.advance()
            return tok.text
        raise self.error(f"expected identifier after 'op', found {tok}")

    def label(self) -> str:
        """A record label: an identifier or a positive integer."""
        if self.at(TokKind.INT):
            tok = self.advance()
            if tok.value <= 0:
                raise self.error("numeric record labels start at 1")
            return str(tok.value)
        return self.ident("record label")

    def longid(self) -> ast.Path:
        """A qualified name ``A.B.x``; the final component may be symbolic."""
        parts = [self.ident()]
        while self.at(TokKind.DOT):
            self.advance()
            parts.append(self.ident())
        return tuple(parts)

    # -- programs and declarations -------------------------------------------

    def program(self) -> list[ast.Dec]:
        decs = self.dec_sequence(stop=("",))
        self.expect_eof()
        return decs

    def dec_sequence(self, stop: tuple[str, ...]) -> list[ast.Dec]:
        """Parse declarations until EOF or one of the given stop keywords."""
        decs: list[ast.Dec] = []
        while True:
            while self.eat(TokKind.SEMICOLON):
                pass
            tok = self.peek()
            if tok.kind in (TokKind.EOF, TokKind.RPAREN):
                return decs
            if tok.kind is TokKind.KEYWORD and tok.text in stop:
                return decs
            decs.append(self.dec())

    def dec(self) -> ast.Dec:
        tok = self.peek()
        if tok.kind is not TokKind.KEYWORD:
            raise self.error(f"expected a declaration, found {tok}")
        handlers = {
            "val": self.val_dec,
            "fun": self.fun_dec,
            "type": self.type_dec,
            "datatype": self.datatype_dec,
            "abstype": self.abstype_dec,
            "exception": self.exception_dec,
            "local": self.local_dec,
            "open": self.open_dec,
            "infix": self.fixity_dec,
            "infixr": self.fixity_dec,
            "nonfix": self.fixity_dec,
            "structure": self.structure_dec,
            "signature": self.signature_dec,
            "functor": self.functor_dec,
        }
        handler = handlers.get(tok.text)
        if handler is None:
            raise self.error(f"unexpected {tok} at start of declaration")
        return handler()

    def tyvarseq(self) -> list[str]:
        """An optional ``'a`` or ``('a, 'b)`` type-variable sequence."""
        if self.at(TokKind.TYVAR):
            return [self.advance().text]
        if self.at(TokKind.LPAREN) and self.peek(1).kind is TokKind.TYVAR:
            self.advance()
            names = [self.expect(TokKind.TYVAR).text]
            while self.eat(TokKind.COMMA):
                names.append(self.expect(TokKind.TYVAR).text)
            self.expect(TokKind.RPAREN)
            return names
        return []

    def val_dec(self) -> ast.Dec:
        line = self.expect_kw("val").line
        tyvars = self.tyvarseq()
        if self.eat_kw("rec"):
            return self._val_rec(tyvars, line)
        bindings = [self._val_bind()]
        while self.eat_kw("and"):
            if self.eat_kw("rec"):
                # ``val x = e and rec f = fn ...`` is not in the subset.
                raise self.error("'val rec' must begin the binding group")
            bindings.append(self._val_bind())
        return ast.ValDec(tyvars, bindings, line)

    def _val_bind(self) -> tuple[ast.Pat, ast.Exp]:
        pat = self.pat()
        self.expect_kw("=")
        return (pat, self.exp())

    def _val_rec(self, tyvars: list[str], line: int) -> ast.ValRecDec:
        bindings = []
        while True:
            name = self.ident("function name")
            self.expect_kw("=")
            body = self.exp()
            if not isinstance(body, ast.FnExp):
                raise self.error("'val rec' right-hand side must be 'fn ...'")
            bindings.append((name, body))
            if not self.eat_kw("and"):
                return ast.ValRecDec(tyvars, bindings, line)

    def fun_dec(self) -> ast.FunDec:
        line = self.expect_kw("fun").line
        tyvars = self.tyvarseq()
        functions = [self._fun_clauses()]
        while self.eat_kw("and"):
            functions.append(self._fun_clauses())
        return ast.FunDec(tyvars, functions, line)

    def _fun_clauses(self) -> list[ast.FunClause]:
        clauses = [self._fun_clause()]
        while self.at_kw("|"):
            self.advance()
            clauses.append(self._fun_clause())
        if len({c.name for c in clauses}) != 1:
            raise self.error("clauses of one 'fun' binding must share a name")
        return clauses

    def _fun_clause(self) -> ast.FunClause:
        line = self.peek().line
        name, pats = self._fun_head()
        result_ty = None
        if self.eat_kw(":"):
            result_ty = self.ty()
        self.expect_kw("=")
        body = self.exp()
        return ast.FunClause(name, pats, result_ty, body, line)

    def _fun_head(self) -> tuple[str, list[ast.Pat]]:
        """Parse a clause head: ``name atpat+`` or infix ``apat id apat``."""
        # Infix definition head: (pat id pat) or pat id pat.
        if self.at(TokKind.LPAREN):
            save = self.pos
            try:
                self.advance()
                left = self.atpat()
                name = self._infix_def_name()
                right = self.atpat()
                self.expect(TokKind.RPAREN)
                more = self._atpat_list()
                return name, [ast.TuplePat([left, right])] + more
            except ParseError:
                self.pos = save
        save = self.pos
        try:
            left = self.atpat()
            name = self._infix_def_name()
            right = self.atpat()
            return name, [ast.TuplePat([left, right])]
        except ParseError:
            self.pos = save
        name = self.ident("function name")
        pats = self._atpat_list()
        if not pats:
            raise self.error("a 'fun' clause needs at least one argument")
        return name, pats

    def _infix_def_name(self) -> str:
        tok = self.peek()
        text = tok.text
        if tok.kind in (TokKind.ID, TokKind.SYMID) or tok.is_keyword("*"):
            if self.fixity.lookup(text) is not None:
                self.advance()
                return text
        raise self.error("not an infix definition")

    def _atpat_list(self) -> list[ast.Pat]:
        pats = []
        while self._starts_atpat():
            pats.append(self.atpat())
        return pats

    def type_dec(self) -> ast.TypeDec:
        line = self.expect_kw("type").line
        bindings = [self._type_bind()]
        while self.eat_kw("and"):
            bindings.append(self._type_bind())
        return ast.TypeDec(bindings, line)

    def _type_bind(self) -> tuple[list[str], str, ast.Ty]:
        tyvars = self.tyvarseq()
        name = self.ident("type name")
        self.expect_kw("=")
        return (tyvars, name, self.ty())

    def datatype_dec(self) -> ast.Dec:
        line = self.expect_kw("datatype").line
        # Replication: datatype t = datatype A.u
        if (
            self.peek().kind is TokKind.ID
            and self.peek(1).is_keyword("=")
            and self.peek(2).is_keyword("datatype")
        ):
            name = self.advance().text
            self.advance()  # =
            self.advance()  # datatype
            return ast.DatatypeReplDec(name, self.longid(), line)
        bindings = [self._datatype_bind()]
        while self.eat_kw("and"):
            bindings.append(self._datatype_bind())
        withtypes = []
        if self.eat_kw("withtype"):
            withtypes.append(self._type_bind())
            while self.eat_kw("and"):
                withtypes.append(self._type_bind())
        return ast.DatatypeDec(bindings, withtypes, line)

    def _datatype_bind(self) -> tuple[list[str], str, list[ast.ConBind]]:
        tyvars = self.tyvarseq()
        name = self.ident("datatype name")
        self.expect_kw("=")
        cons = [self._con_bind()]
        while self.at_kw("|"):
            self.advance()
            cons.append(self._con_bind())
        return (tyvars, name, cons)

    def _con_bind(self) -> ast.ConBind:
        line = self.peek().line
        name = self.ident("constructor name")
        arg_ty = self.ty() if self.eat_kw("of") else None
        return ast.ConBind(name, arg_ty, line)

    def abstype_dec(self) -> ast.AbstypeDec:
        line = self.expect_kw("abstype").line
        bindings = [self._datatype_bind()]
        while self.eat_kw("and"):
            bindings.append(self._datatype_bind())
        self.expect_kw("with")
        body = self.dec_sequence(stop=("end",))
        self.expect_kw("end")
        return ast.AbstypeDec(bindings, body, line)

    def exception_dec(self) -> ast.ExceptionDec:
        line = self.expect_kw("exception").line
        bindings = [self._exn_bind()]
        while self.eat_kw("and"):
            bindings.append(self._exn_bind())
        return ast.ExceptionDec(bindings, line)

    def _exn_bind(self) -> tuple[str, ast.Ty | None, ast.Path | None]:
        name = self.ident("exception name")
        if self.eat_kw("of"):
            return (name, self.ty(), None)
        if self.eat_kw("="):
            return (name, None, self.longid())
        return (name, None, None)

    def local_dec(self) -> ast.LocalDec:
        line = self.expect_kw("local").line
        outer = self.fixity
        self.fixity = outer.child()
        private = self.dec_sequence(stop=("in",))
        self.expect_kw("in")
        public = self.dec_sequence(stop=("end",))
        self.expect_kw("end")
        self.fixity = outer
        return ast.LocalDec(private, public, line)

    def open_dec(self) -> ast.OpenDec:
        line = self.expect_kw("open").line
        paths = [self.longid()]
        while self.peek().kind is TokKind.ID:
            paths.append(self.longid())
        return ast.OpenDec(paths, line)

    def fixity_dec(self) -> ast.FixityDec:
        tok = self.advance()
        assoc = {"infix": "left", "infixr": "right", "nonfix": "non"}[tok.text]
        precedence = 0
        if self.at(TokKind.INT):
            precedence = self.advance().value
        names = []
        while self.peek().kind in (TokKind.ID, TokKind.SYMID) or self.at_kw("*"):
            names.append(self.advance().text)
        if not names:
            raise self.error("fixity declaration names no operators")
        for name in names:
            fix = None if assoc == "non" else Fixity(precedence, assoc)
            self.fixity.declare(name, fix)
        return ast.FixityDec(assoc, precedence, names, tok.line)

    # -- module declarations ---------------------------------------------

    def structure_dec(self) -> ast.StructureDec:
        line = self.expect_kw("structure").line
        bindings = [self._str_bind()]
        while self.eat_kw("and"):
            bindings.append(self._str_bind())
        return ast.StructureDec(bindings, line)

    def _str_bind(self) -> ast.StrBind:
        line = self.peek().line
        name = self.ident("structure name")
        sig = None
        opaque = False
        if self.eat_kw(":"):
            sig = self.sigexp()
        elif self.eat_kw(":>"):
            sig = self.sigexp()
            opaque = True
        self.expect_kw("=")
        return ast.StrBind(name, sig, opaque, self.strexp(), line)

    def strexp(self) -> ast.StrExp:
        line = self.peek().line
        if self.eat_kw("struct"):
            outer = self.fixity
            self.fixity = outer.child()
            decs = self.dec_sequence(stop=("end",))
            self.expect_kw("end")
            self.fixity = outer
            body: ast.StrExp = ast.StructStrExp(decs, line)
        elif self.eat_kw("let"):
            outer = self.fixity
            self.fixity = outer.child()
            decs = self.dec_sequence(stop=("in",))
            self.expect_kw("in")
            inner = self.strexp()
            self.expect_kw("end")
            self.fixity = outer
            body = ast.LetStrExp(decs, inner, line)
        else:
            path = self.longid()
            if self.at(TokKind.LPAREN):
                self.advance()
                # Functor argument: a structure expression, or a bare
                # declaration sequence (derived form).
                if self._starts_strexp():
                    arg = self.strexp()
                else:
                    decs = self.dec_sequence(stop=(")",))
                    arg = ast.StructStrExp(decs, line)
                self.expect(TokKind.RPAREN)
                body = ast.AppStrExp(path, arg, line)
            else:
                body = ast.VarStrExp(path, line)
        while True:
            if self.eat_kw(":"):
                body = ast.ConstraintStrExp(body, self.sigexp(), False, line)
            elif self.eat_kw(":>"):
                body = ast.ConstraintStrExp(body, self.sigexp(), True, line)
            else:
                return body

    def _starts_strexp(self) -> bool:
        tok = self.peek()
        if tok.is_keyword("struct") or tok.is_keyword("let"):
            return True
        return tok.kind is TokKind.ID

    def signature_dec(self) -> ast.SignatureDec:
        line = self.expect_kw("signature").line
        bindings = [self._sig_bind()]
        while self.eat_kw("and"):
            bindings.append(self._sig_bind())
        return ast.SignatureDec(bindings, line)

    def _sig_bind(self) -> tuple[str, ast.SigExp]:
        name = self.ident("signature name")
        self.expect_kw("=")
        return (name, self.sigexp())

    def functor_dec(self) -> ast.FunctorDec:
        line = self.expect_kw("functor").line
        bindings = [self._fct_bind()]
        while self.eat_kw("and"):
            bindings.append(self._fct_bind())
        return ast.FunctorDec(bindings, line)

    def _fct_bind(self) -> ast.FctBind:
        line = self.peek().line
        name = self.ident("functor name")
        self.expect(TokKind.LPAREN)
        fct_param = None
        param_sig = None
        if self.at_kw("functor"):
            # Higher-order parameter: functor G (X : S1) : S2
            fline = self.advance().line
            gname = self.ident("functor parameter name")
            self.expect(TokKind.LPAREN)
            inner = self.ident("inner parameter")
            self.expect_kw(":")
            inner_sig = self.sigexp()
            self.expect(TokKind.RPAREN)
            self.expect_kw(":")
            inner_result = self.sigexp()
            fct_param = ast.FctParamSpec(gname, inner, inner_sig,
                                         inner_result, fline)
            param_name = gname
        else:
            param_name = self.ident("functor parameter")
            self.expect_kw(":")
            param_sig = self.sigexp()
        self.expect(TokKind.RPAREN)
        result_sig = None
        opaque = False
        if self.eat_kw(":"):
            result_sig = self.sigexp()
        elif self.eat_kw(":>"):
            result_sig = self.sigexp()
            opaque = True
        self.expect_kw("=")
        return ast.FctBind(name, param_name, param_sig, result_sig, opaque,
                           self.strexp(), line, fct_param)

    # -- signature expressions and specs -----------------------------------

    def sigexp(self) -> ast.SigExp:
        line = self.peek().line
        if self.eat_kw("sig"):
            specs = self._spec_sequence()
            self.expect_kw("end")
            base: ast.SigExp = ast.SigSigExp(specs, line)
        else:
            base = ast.VarSigExp(self.ident("signature name"), line)
        while self.at_kw("where"):
            self.advance()
            self.expect_kw("type")
            while True:
                tyvars = self.tyvarseq()
                path = self.longid()
                self.expect_kw("=")
                ty = self.ty()
                base = ast.WhereTypeSigExp(base, tyvars, path, ty, line)
                if not self.eat_kw("and"):
                    break
                # "and type" continues the where; plain "and" would belong
                # to an enclosing binding, so require the 'type' keyword.
                self.expect_kw("type")
        return base

    def _spec_sequence(self) -> list[ast.Spec]:
        specs: list[ast.Spec] = []
        while True:
            while self.eat(TokKind.SEMICOLON):
                pass
            tok = self.peek()
            if tok.kind is not TokKind.KEYWORD or tok.text == "end":
                return specs
            if tok.text == "val":
                specs.append(self._val_spec())
            elif tok.text in ("type", "eqtype"):
                specs.append(self._type_spec())
            elif tok.text == "datatype":
                specs.append(self._datatype_spec())
            elif tok.text == "exception":
                specs.append(self._exception_spec())
            elif tok.text == "structure":
                specs.append(self._structure_spec())
            elif tok.text == "include":
                line = self.advance().line
                specs.append(ast.IncludeSpec(self.sigexp(), line))
            elif tok.text == "sharing":
                specs.append(self._sharing_spec())
            else:
                return specs

    def _val_spec(self) -> ast.ValSpec:
        line = self.expect_kw("val").line
        bindings = []
        while True:
            name = self.ident("value name")
            self.expect_kw(":")
            bindings.append((name, self.ty()))
            if not self.eat_kw("and"):
                return ast.ValSpec(bindings, line)

    def _type_spec(self) -> ast.TypeSpec:
        tok = self.advance()  # type | eqtype
        equality = tok.text == "eqtype"
        bindings = []
        while True:
            tyvars = self.tyvarseq()
            name = self.ident("type name")
            definition = None
            if self.at_kw("="):
                self.advance()
                definition = self.ty()
            bindings.append((tyvars, name, definition))
            if not self.eat_kw("and"):
                return ast.TypeSpec(bindings, equality, tok.line)

    def _datatype_spec(self) -> ast.DatatypeSpec:
        line = self.expect_kw("datatype").line
        bindings = [self._datatype_bind()]
        while self.eat_kw("and"):
            bindings.append(self._datatype_bind())
        return ast.DatatypeSpec(bindings, line)

    def _exception_spec(self) -> ast.ExceptionSpec:
        line = self.expect_kw("exception").line
        bindings = []
        while True:
            name = self.ident("exception name")
            ty = self.ty() if self.eat_kw("of") else None
            bindings.append((name, ty))
            if not self.eat_kw("and"):
                return ast.ExceptionSpec(bindings, line)

    def _structure_spec(self) -> ast.StructureSpec:
        line = self.expect_kw("structure").line
        bindings = []
        while True:
            name = self.ident("structure name")
            self.expect_kw(":")
            bindings.append((name, self.sigexp()))
            if not self.eat_kw("and"):
                return ast.StructureSpec(bindings, line)

    def _sharing_spec(self) -> ast.SharingSpec:
        line = self.expect_kw("sharing").line
        self.expect_kw("type")
        paths = [self.longid()]
        self.expect_kw("=")
        paths.append(self.longid())
        while self.eat_kw("="):
            paths.append(self.longid())
        return ast.SharingSpec(paths, line)

    # -- types ---------------------------------------------------------------

    def ty(self) -> ast.Ty:
        line = self.peek().line
        left = self._tuple_ty()
        if self.eat_kw("->"):
            return ast.ArrowTy(left, self.ty(), line)
        return left

    def _tuple_ty(self) -> ast.Ty:
        line = self.peek().line
        parts = [self._app_ty()]
        while self.at_kw("*"):
            self.advance()
            parts.append(self._app_ty())
        if len(parts) == 1:
            return parts[0]
        return ast.TupleTy(parts, line)

    def _app_ty(self) -> ast.Ty:
        line = self.peek().line
        ty = self._atomic_ty()
        while self.peek().kind is TokKind.ID:
            path = self.longid()
            ty = ast.ConTy([ty], path, line)
        return ty

    def _atomic_ty(self) -> ast.Ty:
        tok = self.peek()
        line = tok.line
        if tok.kind is TokKind.TYVAR:
            self.advance()
            return ast.TyVarTy(tok.text, line)
        if tok.kind is TokKind.LBRACE:
            self.advance()
            fields = []
            if not self.at(TokKind.RBRACE):
                fields.append(self._ty_field())
                while self.eat(TokKind.COMMA):
                    fields.append(self._ty_field())
            self.expect(TokKind.RBRACE)
            return ast.RecordTy(fields, line)
        if tok.kind is TokKind.LPAREN:
            self.advance()
            tys = [self.ty()]
            while self.eat(TokKind.COMMA):
                tys.append(self.ty())
            self.expect(TokKind.RPAREN)
            if len(tys) > 1:
                path = self.longid()
                ty: ast.Ty = ast.ConTy(tys, path, line)
            else:
                ty = tys[0]
            return ty
        if tok.kind is TokKind.ID:
            return ast.ConTy([], self.longid(), line)
        raise self.error(f"expected a type, found {tok}")

    def _ty_field(self) -> tuple[str, ast.Ty]:
        label = self.label()
        self.expect_kw(":")
        return (label, self.ty())

    # -- patterns -------------------------------------------------------------

    def pat(self) -> ast.Pat:
        """Full pattern: infix constructor resolution + 'as' + ': ty'."""
        line = self.peek().line
        # 'name as pat' / 'name : ty as pat'
        if self.peek().kind is TokKind.ID and not self._id_is_con(self.peek().text):
            if self.peek(1).is_keyword("as"):
                name = self.advance().text
                self.advance()
                return ast.AsPat(name, self.pat(), line)
        pat = self._infix_pat()
        while self.at_kw(":"):
            self.advance()
            pat = ast.TypedPat(pat, self.ty(), line)
            if self.peek().is_keyword("as") and isinstance(pat.pat, ast.VarPat):
                self.advance()
                return ast.AsPat(pat.pat.name, self.pat(), line)
        return pat

    def _infix_pat(self) -> ast.Pat:
        items: list[object] = [self._app_pat()]
        while True:
            tok = self.peek()
            text = tok.text
            if tok.kind in (TokKind.ID, TokKind.SYMID) or tok.is_keyword("*"):
                fix = self.fixity.lookup(text)
                if fix is not None and text != "=":
                    self.advance()
                    items.append((text, fix, tok.line))
                    items.append(self._app_pat())
                    continue
            break
        return self._resolve_infix(items, self._mk_con_pat)

    def _mk_con_pat(self, name: str, left: ast.Pat, right: ast.Pat,
                    line: int) -> ast.Pat:
        return ast.ConPat((name,), ast.TuplePat([left, right], line), line)

    def _app_pat(self) -> ast.Pat:
        """Constructor application: ``longid atpat`` or an atomic pattern."""
        tok = self.peek()
        if tok.kind is TokKind.ID or tok.is_keyword("op"):
            save = self.pos
            op_used = self.eat_kw("op")
            if self.peek().kind is TokKind.ID or (
                op_used and self.peek().kind is TokKind.SYMID
            ):
                path = self.longid()
                if self._starts_atpat():
                    return ast.ConPat(path, self.atpat(), tok.line)
                self.pos = save
        return self.atpat()

    def _starts_atpat(self) -> bool:
        tok = self.peek()
        if tok.kind in (
            TokKind.ID, TokKind.INT, TokKind.WORD, TokKind.STRING,
            TokKind.CHAR, TokKind.LPAREN, TokKind.LBRACKET, TokKind.LBRACE,
            TokKind.UNDERSCORE,
        ):
            if tok.kind is TokKind.ID and self.fixity.lookup(tok.text):
                return False  # infix operator: not the start of an atpat
            return True
        return tok.is_keyword("op")

    def atpat(self) -> ast.Pat:
        tok = self.peek()
        line = tok.line
        if tok.kind is TokKind.UNDERSCORE:
            self.advance()
            return ast.WildPat(line)
        if tok.kind is TokKind.INT:
            self.advance()
            return ast.ConstPat("int", tok.value, line)
        if tok.kind is TokKind.WORD:
            self.advance()
            return ast.ConstPat("word", tok.value, line)
        if tok.kind is TokKind.STRING:
            self.advance()
            return ast.ConstPat("string", tok.value, line)
        if tok.kind is TokKind.CHAR:
            self.advance()
            return ast.ConstPat("char", tok.value, line)
        if tok.kind is TokKind.ID or tok.is_keyword("op"):
            op_used = self.eat_kw("op")
            if op_used:
                name = self.op_ident()
                return ast.VarPat(name, line)
            path = self.longid()
            if len(path) > 1:
                return ast.ConPat(path, None, line)
            return ast.VarPat(path[0], line)
        if tok.kind is TokKind.LPAREN:
            self.advance()
            if self.eat(TokKind.RPAREN):
                return ast.TuplePat([], line)  # unit
            pats = [self.pat()]
            while self.eat(TokKind.COMMA):
                pats.append(self.pat())
            self.expect(TokKind.RPAREN)
            if len(pats) == 1:
                return pats[0]
            return ast.TuplePat(pats, line)
        if tok.kind is TokKind.LBRACKET:
            self.advance()
            pats = []
            if not self.at(TokKind.RBRACKET):
                pats.append(self.pat())
                while self.eat(TokKind.COMMA):
                    pats.append(self.pat())
            self.expect(TokKind.RBRACKET)
            return ast.ListPat(pats, line)
        if tok.kind is TokKind.LBRACE:
            return self._record_pat()
        raise self.error(f"expected a pattern, found {tok}")

    def _record_pat(self) -> ast.Pat:
        line = self.expect(TokKind.LBRACE).line
        fields: list[tuple[str, ast.Pat]] = []
        flexible = False
        if not self.at(TokKind.RBRACE):
            while True:
                if self.at(TokKind.DOTDOTDOT):
                    self.advance()
                    flexible = True
                    break
                label = self.label()
                if self.eat_kw("="):
                    fields.append((label, self.pat()))
                else:
                    # Punning: {x, y} == {x = x, y = y}; allow ': ty' and 'as'.
                    pat: ast.Pat = ast.VarPat(label, line)
                    if self.eat_kw(":"):
                        pat = ast.TypedPat(pat, self.ty(), line)
                    if self.eat_kw("as"):
                        pat = ast.AsPat(label, self.pat(), line)
                    fields.append((label, pat))
                if not self.eat(TokKind.COMMA):
                    break
        self.expect(TokKind.RBRACE)
        return ast.RecordPat(fields, flexible, line)

    def _id_is_con(self, _name: str) -> bool:
        # The parser cannot know constructor-ness; resolution happens in the
        # elaborator.  Only 'as'-pattern lookahead uses this, where treating
        # every name as a variable matches the Definition's grammar.
        return False

    # -- expressions ---------------------------------------------------------

    def exp(self) -> ast.Exp:
        tok = self.peek()
        line = tok.line
        if tok.is_keyword("fn"):
            self.advance()
            return ast.FnExp(self._match(), line)
        if tok.is_keyword("case"):
            self.advance()
            scrutinee = self.exp()
            self.expect_kw("of")
            return ast.CaseExp(scrutinee, self._match(), line)
        if tok.is_keyword("if"):
            self.advance()
            cond = self.exp()
            self.expect_kw("then")
            then = self.exp()
            self.expect_kw("else")
            return ast.IfExp(cond, then, self.exp(), line)
        if tok.is_keyword("while"):
            self.advance()
            cond = self.exp()
            self.expect_kw("do")
            return ast.WhileExp(cond, self.exp(), line)
        if tok.is_keyword("raise"):
            self.advance()
            return ast.RaiseExp(self.exp(), line)
        exp = self._orelse_exp()
        while self.at_kw("handle"):
            self.advance()
            exp = ast.HandleExp(exp, self._match(), line)
        return exp

    def _match(self) -> list[tuple[ast.Pat, ast.Exp]]:
        rules = [self._rule()]
        while self.at_kw("|"):
            self.advance()
            rules.append(self._rule())
        return rules

    def _rule(self) -> tuple[ast.Pat, ast.Exp]:
        pat = self.pat()
        self.expect_kw("=>")
        return (pat, self.exp())

    def _orelse_exp(self) -> ast.Exp:
        line = self.peek().line
        left = self._andalso_exp()
        while self.at_kw("orelse"):
            self.advance()
            left = ast.OrelseExp(left, self._andalso_exp(), line)
        return left

    def _andalso_exp(self) -> ast.Exp:
        line = self.peek().line
        left = self._typed_exp()
        while self.at_kw("andalso"):
            self.advance()
            left = ast.AndalsoExp(left, self._typed_exp(), line)
        return left

    def _typed_exp(self) -> ast.Exp:
        line = self.peek().line
        exp = self._infix_exp()
        while self.at_kw(":"):
            self.advance()
            exp = ast.TypedExp(exp, self.ty(), line)
        return exp

    def _infix_exp(self) -> ast.Exp:
        items: list[object] = [self._app_exp()]
        while True:
            tok = self.peek()
            text = tok.text
            if (
                tok.kind in (TokKind.ID, TokKind.SYMID)
                or tok.is_keyword("*")
                or tok.is_keyword("=")
            ):
                fix = self.fixity.lookup(text)
                if fix is not None:
                    self.advance()
                    items.append((text, fix, tok.line))
                    items.append(self._app_exp())
                    continue
            break
        return self._resolve_infix(items, self._mk_infix_app)

    def _mk_infix_app(self, name: str, left: ast.Exp, right: ast.Exp,
                      line: int) -> ast.Exp:
        fn = ast.VarExp((name,), line)
        return ast.AppExp(fn, ast.TupleExp([left, right], line), line)

    def _resolve_infix(self, items: list[object], mk) -> object:
        """Resolve an alternating operand/operator list by precedence.

        ``items`` alternates operands and ``(name, Fixity, line)`` triples.
        Uses the classic two-stack shunting algorithm; equal-precedence
        mixed associativity resolves to the left (with SML/NJ's behaviour).
        """
        operands: list[object] = [items[0]]
        operators: list[tuple[str, Fixity, int]] = []

        def reduce_top() -> None:
            name, _fix, line = operators.pop()
            right = operands.pop()
            left = operands.pop()
            operands.append(mk(name, left, right, line))

        index = 1
        while index < len(items):
            op = items[index]
            operand = items[index + 1]
            index += 2
            name, fix, line = op
            while operators:
                _tname, tfix, _tline = operators[-1]
                if tfix.precedence > fix.precedence or (
                    tfix.precedence == fix.precedence and fix.assoc == "left"
                ):
                    reduce_top()
                else:
                    break
            operators.append((name, fix, line))
            operands.append(operand)
        while operators:
            reduce_top()
        return operands[0]

    def _app_exp(self) -> ast.Exp:
        exp = self.atexp()
        while self._starts_atexp():
            arg = self.atexp()
            exp = ast.AppExp(exp, arg, getattr(exp, "line", 0))
        return exp

    def _starts_atexp(self) -> bool:
        tok = self.peek()
        if tok.kind in (
            TokKind.INT, TokKind.WORD, TokKind.REAL, TokKind.STRING,
            TokKind.CHAR, TokKind.LPAREN, TokKind.LBRACKET, TokKind.LBRACE,
        ):
            return True
        if tok.kind is TokKind.ID:
            return self.fixity.lookup(tok.text) is None
        if tok.kind is TokKind.SYMID:
            return self.fixity.lookup(tok.text) is None
        if tok.kind is TokKind.KEYWORD:
            return tok.text in ("let", "op", "#")
        return False

    def atexp(self) -> ast.Exp:
        tok = self.peek()
        line = tok.line
        if tok.kind is TokKind.INT:
            self.advance()
            return ast.IntExp(tok.value, line)
        if tok.kind is TokKind.WORD:
            self.advance()
            return ast.WordExp(tok.value, line)
        if tok.kind is TokKind.REAL:
            self.advance()
            return ast.RealExp(tok.value, line)
        if tok.kind is TokKind.STRING:
            self.advance()
            return ast.StringExp(tok.value, line)
        if tok.kind is TokKind.CHAR:
            self.advance()
            return ast.CharExp(tok.value, line)
        if tok.is_keyword("op"):
            self.advance()
            return ast.VarExp((self.op_ident(),), line)
        if tok.is_keyword("#"):
            self.advance()
            return ast.SelectorExp(self.label(), line)
        if tok.kind in (TokKind.ID, TokKind.SYMID):
            return ast.VarExp(self.longid(), line)
        if tok.is_keyword("let"):
            self.advance()
            outer = self.fixity
            self.fixity = outer.child()
            decs = self.dec_sequence(stop=("in",))
            self.expect_kw("in")
            body = self.exp()
            if self.at(TokKind.SEMICOLON):
                parts = [body]
                while self.eat(TokKind.SEMICOLON):
                    parts.append(self.exp())
                body = ast.SeqExp(parts, line)
            self.expect_kw("end")
            self.fixity = outer
            return ast.LetExp(decs, body, line)
        if tok.kind is TokKind.LPAREN:
            self.advance()
            if self.eat(TokKind.RPAREN):
                return ast.TupleExp([], line)  # unit
            first = self.exp()
            if self.at(TokKind.COMMA):
                parts = [first]
                while self.eat(TokKind.COMMA):
                    parts.append(self.exp())
                self.expect(TokKind.RPAREN)
                return ast.TupleExp(parts, line)
            if self.at(TokKind.SEMICOLON):
                parts = [first]
                while self.eat(TokKind.SEMICOLON):
                    parts.append(self.exp())
                self.expect(TokKind.RPAREN)
                return ast.SeqExp(parts, line)
            self.expect(TokKind.RPAREN)
            return first
        if tok.kind is TokKind.LBRACKET:
            self.advance()
            parts = []
            if not self.at(TokKind.RBRACKET):
                parts.append(self.exp())
                while self.eat(TokKind.COMMA):
                    parts.append(self.exp())
            self.expect(TokKind.RBRACKET)
            return ast.ListExp(parts, line)
        if tok.kind is TokKind.LBRACE:
            self.advance()
            fields = []
            if not self.at(TokKind.RBRACE):
                fields.append(self._exp_field())
                while self.eat(TokKind.COMMA):
                    fields.append(self._exp_field())
            self.expect(TokKind.RBRACE)
            return ast.RecordExp(fields, line)
        raise self.error(f"expected an expression, found {tok}")

    def _exp_field(self) -> tuple[str, ast.Exp]:
        label = self.label()
        self.expect_kw("=")
        return (label, self.exp())
