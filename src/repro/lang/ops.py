"""Operator fixity environments.

SML's grammar is parameterized by a fixity environment that ``infix``,
``infixr`` and ``nonfix`` declarations update.  The parser threads a
:class:`FixityEnv` through declaration scopes (``let``, ``local``,
``struct`` bodies introduce a child scope so fixity declarations do not
escape).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Fixity:
    precedence: int
    assoc: str  # "left" | "right"


#: The initial basis fixities from the Definition of Standard ML.
DEFAULT_FIXITIES: dict[str, Fixity] = {
    "*": Fixity(7, "left"),
    "/": Fixity(7, "left"),
    "div": Fixity(7, "left"),
    "mod": Fixity(7, "left"),
    "+": Fixity(6, "left"),
    "-": Fixity(6, "left"),
    "^": Fixity(6, "left"),
    "::": Fixity(5, "right"),
    "@": Fixity(5, "right"),
    "=": Fixity(4, "left"),
    "<>": Fixity(4, "left"),
    ">": Fixity(4, "left"),
    ">=": Fixity(4, "left"),
    "<": Fixity(4, "left"),
    "<=": Fixity(4, "left"),
    ":=": Fixity(3, "left"),
    "o": Fixity(3, "left"),
    "before": Fixity(0, "left"),
}


class FixityEnv:
    """A chained scope of fixity declarations."""

    def __init__(self, parent: "FixityEnv | None" = None):
        self._parent = parent
        self._table: dict[str, Fixity | None] = {}  # None marks ``nonfix``

    @classmethod
    def initial(cls) -> "FixityEnv":
        env = cls()
        env._table.update(DEFAULT_FIXITIES)
        return env

    def child(self) -> "FixityEnv":
        return FixityEnv(self)

    def lookup(self, name: str) -> Fixity | None:
        env: FixityEnv | None = self
        while env is not None:
            if name in env._table:
                return env._table[name]
            env = env._parent
        return None

    def declare(self, name: str, fixity: Fixity | None) -> None:
        self._table[name] = fixity
