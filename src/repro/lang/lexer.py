"""Lexer for the Standard ML subset.

Follows the Definition of Standard ML's lexical rules closely enough for
real programs: nested ``(* ... *)`` comments, ``~`` negation in numeric
literals, ``0x``/``0w`` forms, string escapes, character literals ``#"c"``,
type variables ``'a``/``''a``, alphanumeric and symbolic identifiers, and
the reserved words/symbols of the subset.
"""

from __future__ import annotations

from repro.lang.errors import LexError
from repro.lang.tokens import KEYWORDS, RESERVED_SYMBOLIC, TokKind, Token

#: Characters that may form symbolic identifiers, per the Definition.
SYMBOL_CHARS = set("!%&$#+-/:<=>?@\\~`^|*")

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    '"': '"',
    "\\": "\\",
}


class _Scanner:
    """Mutable cursor over the source text with line/column tracking."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.col = 1

    def peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.text[i] if i < len(self.text) else ""

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def error(self, message: str) -> LexError:
        return LexError(message, self.line, self.col)


def tokenize(text: str) -> list[Token]:
    """Convert source text to a token list ending with an EOF token.

    Raises:
        LexError: on malformed literals or unterminated comments/strings.
    """
    sc = _Scanner(text)
    toks: list[Token] = []
    while True:
        _skip_space_and_comments(sc)
        if sc.at_end():
            toks.append(Token(TokKind.EOF, "", sc.line, sc.col))
            return toks
        toks.append(_scan_token(sc))


def _skip_space_and_comments(sc: _Scanner) -> None:
    while not sc.at_end():
        ch = sc.peek()
        if ch in " \t\r\n\f":
            sc.advance()
        elif ch == "(" and sc.peek(1) == "*":
            _skip_comment(sc)
        else:
            return


def _skip_comment(sc: _Scanner) -> None:
    start_line, start_col = sc.line, sc.col
    sc.advance()  # (
    sc.advance()  # *
    depth = 1
    while depth > 0:
        if sc.at_end():
            raise LexError("unterminated comment", start_line, start_col)
        if sc.peek() == "(" and sc.peek(1) == "*":
            sc.advance()
            sc.advance()
            depth += 1
        elif sc.peek() == "*" and sc.peek(1) == ")":
            sc.advance()
            sc.advance()
            depth -= 1
        else:
            sc.advance()


def _is_ascii_digit(ch: str) -> bool:
    # str.isdigit() accepts Unicode digits (superscripts, Thai numerals,
    # ...) that the literal scanners do not consume; SML digits are ASCII.
    return "0" <= ch <= "9"


def _scan_token(sc: _Scanner) -> Token:
    line, col = sc.line, sc.col
    ch = sc.peek()

    if _is_ascii_digit(ch):
        return _scan_number(sc, negative=False)
    if ch == "~" and _is_ascii_digit(sc.peek(1)):
        sc.advance()
        return _scan_number(sc, negative=True, line=line, col=col)
    if ch == '"':
        return _scan_string(sc)
    if ch == "#" and sc.peek(1) == '"':
        sc.advance()
        tok = _scan_string(sc)
        if len(tok.value) != 1:
            raise LexError("character literal must hold one character", line, col)
        return Token(TokKind.CHAR, tok.text, line, col, tok.value)
    if ch == "'":
        return _scan_tyvar(sc)
    if ch.isalpha():
        return _scan_alpha_ident(sc)

    single = {
        "(": TokKind.LPAREN,
        ")": TokKind.RPAREN,
        "[": TokKind.LBRACKET,
        "]": TokKind.RBRACKET,
        "{": TokKind.LBRACE,
        "}": TokKind.RBRACE,
        ",": TokKind.COMMA,
        ";": TokKind.SEMICOLON,
    }
    if ch in single:
        sc.advance()
        return Token(single[ch], ch, line, col)
    if ch == ".":
        if sc.peek(1) == "." and sc.peek(2) == ".":
            sc.advance()
            sc.advance()
            sc.advance()
            return Token(TokKind.DOTDOTDOT, "...", line, col)
        sc.advance()
        return Token(TokKind.DOT, ".", line, col)
    if ch == "_":
        sc.advance()
        return Token(TokKind.UNDERSCORE, "_", line, col)
    if ch in SYMBOL_CHARS:
        return _scan_symbolic(sc)
    raise sc.error(f"illegal character {ch!r}")


def _scan_number(sc: _Scanner, negative: bool, line: int = 0, col: int = 0) -> Token:
    if not line:
        line, col = sc.line, sc.col
    digits = []
    if sc.peek() == "0" and sc.peek(1) == "w":
        sc.advance()
        sc.advance()
        base = 16 if sc.peek() == "x" else 10
        if base == 16:
            sc.advance()
        text = _scan_digits(sc, base)
        if not text:
            raise sc.error("malformed word literal")
        return Token(TokKind.WORD, "0w" + text, line, col, int(text, base))
    if sc.peek() == "0" and sc.peek(1) == "x":
        sc.advance()
        sc.advance()
        text = _scan_digits(sc, 16)
        if not text:
            raise sc.error("malformed hex literal")
        value = int(text, 16)
        return Token(TokKind.INT, "0x" + text, line, col, -value if negative else value)

    digits.append(_scan_digits(sc, 10))
    is_real = False
    if sc.peek() == "." and _is_ascii_digit(sc.peek(1)):
        is_real = True
        sc.advance()
        digits.append("." + _scan_digits(sc, 10))
    if sc.peek() in ("e", "E") and (
        _is_ascii_digit(sc.peek(1))
        or (sc.peek(1) == "~" and _is_ascii_digit(sc.peek(2)))
    ):
        is_real = True
        sc.advance()
        exp_sign = ""
        if sc.peek() == "~":
            sc.advance()
            exp_sign = "-"
        digits.append("e" + exp_sign + _scan_digits(sc, 10))
    text = "".join(digits)
    if is_real:
        value = float(text)
        return Token(TokKind.REAL, text, line, col, -value if negative else value)
    value = int(text)
    return Token(TokKind.INT, text, line, col, -value if negative else value)


def _scan_digits(sc: _Scanner, base: int) -> str:
    ok = "0123456789abcdefABCDEF" if base == 16 else "0123456789"
    out = []
    while sc.peek() and sc.peek() in ok:
        out.append(sc.advance())
    return "".join(out)


def _scan_string(sc: _Scanner) -> Token:
    line, col = sc.line, sc.col
    sc.advance()  # opening quote
    chars: list[str] = []
    while True:
        if sc.at_end():
            raise LexError("unterminated string", line, col)
        ch = sc.advance()
        if ch == '"':
            break
        if ch == "\n":
            raise LexError("newline in string literal", line, col)
        if ch == "\\":
            chars.append(_scan_escape(sc, line, col))
        else:
            chars.append(ch)
    value = "".join(chars)
    return Token(TokKind.STRING, '"' + value + '"', line, col, value)


def _scan_escape(sc: _Scanner, line: int, col: int) -> str:
    if sc.at_end():
        raise LexError("unterminated escape", line, col)
    ch = sc.advance()
    if ch in _ESCAPES:
        return _ESCAPES[ch]
    if _is_ascii_digit(ch):
        if sc.at_end():
            raise LexError("malformed decimal escape", line, col)
        d2 = sc.advance()
        if sc.at_end():
            raise LexError("malformed decimal escape", line, col)
        d3 = sc.advance()
        if not (_is_ascii_digit(d2) and _is_ascii_digit(d3)):
            raise LexError("malformed decimal escape", line, col)
        return chr(int(ch + d2 + d3))
    if ch == "^":
        ctrl = sc.advance()
        return chr(ord(ctrl) - 64)
    if ch in " \t\n\f\r":
        # Gap escape: \ whitespace... \ splices lines together.
        while not sc.at_end() and sc.peek() in " \t\n\f\r":
            sc.advance()
        if sc.at_end() or sc.advance() != "\\":
            raise LexError("malformed string gap", line, col)
        return ""
    raise LexError(f"unknown escape \\{ch}", line, col)


def _scan_tyvar(sc: _Scanner) -> Token:
    line, col = sc.line, sc.col
    text = [sc.advance()]  # '
    if sc.peek() == "'":
        text.append(sc.advance())  # equality tyvar ''a
    if not (sc.peek().isalnum() or sc.peek() == "_"):
        raise sc.error("malformed type variable")
    while sc.peek() and (sc.peek().isalnum() or sc.peek() in "_'"):
        text.append(sc.advance())
    return Token(TokKind.TYVAR, "".join(text), line, col)


def _scan_alpha_ident(sc: _Scanner) -> Token:
    line, col = sc.line, sc.col
    chars = [sc.advance()]
    while sc.peek() and (sc.peek().isalnum() or sc.peek() in "_'"):
        chars.append(sc.advance())
    text = "".join(chars)
    if text in KEYWORDS:
        return Token(TokKind.KEYWORD, text, line, col)
    return Token(TokKind.ID, text, line, col)


def _scan_symbolic(sc: _Scanner) -> Token:
    line, col = sc.line, sc.col
    chars = []
    while sc.peek() in SYMBOL_CHARS:
        chars.append(sc.advance())
    text = "".join(chars)
    if text in RESERVED_SYMBOLIC:
        return Token(TokKind.KEYWORD, text, line, col)
    return Token(TokKind.SYMID, text, line, col)
