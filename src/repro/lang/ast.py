"""Abstract syntax for the Standard ML subset.

All nodes are plain dataclasses so that they can be traversed generically
and written to bin files by :mod:`repro.pickle` (a compilation unit's
"code" in this reproduction is its elaborated AST; see DESIGN.md).

Resolution annotations
----------------------

The elaborator decorates a few node classes in place with *context
independent* facts needed by the dynamic semantics (chiefly: whether a
lowercase name in a pattern or expression is a variable, a datatype
constructor, or an exception constructor).  These annotations live in the
mutable ``info`` fields.  They are deliberately restricted to facts that
are functions of the lexical scope's *shape* (which is identical across
repeated functor-body elaborations), never of particular type stamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: A (possibly qualified) long identifier such as ``A.B.x`` -> ("A","B","x").
Path = tuple[str, ...]


def path_str(path: Path) -> str:
    return ".".join(path)


@dataclass
class Node:
    """Base class carrying a source line for error messages."""


@dataclass
class ConInfo:
    """Elaborator annotation: this name denotes a constructor.

    Stored in the ``info`` field of :class:`VarPat`, :class:`ConPat` and
    :class:`VarExp` nodes.  Contains only scope-shape facts (safe to share
    across functor applications): the constructor's name, whether it
    carries an argument, and whether it is an exception constructor
    (exception identity is resolved *dynamically* through the environment,
    preserving generativity).
    """

    name: str
    has_arg: bool
    is_exn: bool = False


# ---------------------------------------------------------------------------
# Syntactic types
# ---------------------------------------------------------------------------


@dataclass
class Ty(Node):
    pass


@dataclass
class TyVarTy(Ty):
    name: str  # includes the leading quote(s): "'a", "''a"
    line: int = 0


@dataclass
class ConTy(Ty):
    """A type-constructor application: ``(ty1, ..., tyn) path``."""

    args: list[Ty]
    path: Path
    line: int = 0


@dataclass
class TupleTy(Ty):
    parts: list[Ty]
    line: int = 0


@dataclass
class RecordTy(Ty):
    fields: list[tuple[str, Ty]]
    line: int = 0


@dataclass
class ArrowTy(Ty):
    dom: Ty
    rng: Ty
    line: int = 0


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


@dataclass
class Pat(Node):
    pass


@dataclass
class WildPat(Pat):
    line: int = 0


@dataclass
class VarPat(Pat):
    """An unqualified lowercase name.

    The elaborator sets ``info`` to ``"var"`` or to a ``ConInfo`` when the
    name is actually a nullary constructor in scope.
    """

    name: str
    line: int = 0
    info: object = None


@dataclass
class ConstPat(Pat):
    """Integer, string or char literal pattern."""

    kind: str  # "int" | "string" | "char" | "word"
    value: object = None
    line: int = 0


@dataclass
class ConPat(Pat):
    """Constructor application pattern ``C pat`` or qualified ``A.C``."""

    path: Path
    arg: Pat | None
    line: int = 0
    info: object = None


@dataclass
class TuplePat(Pat):
    parts: list[Pat]
    line: int = 0


@dataclass
class RecordPat(Pat):
    fields: list[tuple[str, Pat]]
    flexible: bool = False  # true when the pattern ends with "..."
    line: int = 0
    #: Set by the elaborator when ``flexible``: the full sorted label list
    #: of the record type, so the evaluator can ignore extra fields.
    info: object = None


@dataclass
class ListPat(Pat):
    parts: list[Pat]
    line: int = 0


@dataclass
class AsPat(Pat):
    name: str
    pat: Pat
    line: int = 0


@dataclass
class TypedPat(Pat):
    pat: Pat
    ty: Ty
    line: int = 0


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Exp(Node):
    pass


@dataclass
class IntExp(Exp):
    value: int
    line: int = 0


@dataclass
class WordExp(Exp):
    value: int
    line: int = 0


@dataclass
class RealExp(Exp):
    value: float
    line: int = 0


@dataclass
class StringExp(Exp):
    value: str
    line: int = 0


@dataclass
class CharExp(Exp):
    value: str
    line: int = 0


@dataclass
class VarExp(Exp):
    """A (possibly qualified) value identifier.

    ``info`` is set by the elaborator to ``"var"`` or a ``ConInfo``.
    """

    path: Path
    line: int = 0
    info: object = None


@dataclass
class SelectorExp(Exp):
    """``#label`` -- a record field selector used as a function."""

    label: str
    line: int = 0


@dataclass
class TupleExp(Exp):
    parts: list[Exp]
    line: int = 0


@dataclass
class RecordExp(Exp):
    fields: list[tuple[str, Exp]]
    line: int = 0


@dataclass
class ListExp(Exp):
    parts: list[Exp]
    line: int = 0


@dataclass
class SeqExp(Exp):
    """``(e1; e2; ...; en)`` -- evaluate all, yield the last."""

    parts: list[Exp]
    line: int = 0


@dataclass
class AppExp(Exp):
    fn: Exp
    arg: Exp
    line: int = 0


@dataclass
class FnExp(Exp):
    """``fn pat => exp | ...`` -- a match as an anonymous function."""

    rules: list[tuple[Pat, Exp]]
    line: int = 0


@dataclass
class LetExp(Exp):
    decs: list["Dec"]
    body: Exp
    line: int = 0


@dataclass
class IfExp(Exp):
    cond: Exp
    then: Exp
    els: Exp
    line: int = 0


@dataclass
class CaseExp(Exp):
    scrutinee: Exp
    rules: list[tuple[Pat, Exp]]
    line: int = 0


@dataclass
class AndalsoExp(Exp):
    left: Exp
    right: Exp
    line: int = 0


@dataclass
class OrelseExp(Exp):
    left: Exp
    right: Exp
    line: int = 0


@dataclass
class WhileExp(Exp):
    cond: Exp
    body: Exp
    line: int = 0


@dataclass
class RaiseExp(Exp):
    exn: Exp
    line: int = 0


@dataclass
class HandleExp(Exp):
    body: Exp
    rules: list[tuple[Pat, Exp]]
    line: int = 0


@dataclass
class TypedExp(Exp):
    exp: Exp
    ty: Ty
    line: int = 0


# ---------------------------------------------------------------------------
# Core declarations
# ---------------------------------------------------------------------------


@dataclass
class Dec(Node):
    pass


@dataclass
class ValDec(Dec):
    tyvars: list[str]
    bindings: list[tuple[Pat, Exp]]
    line: int = 0


@dataclass
class ValRecDec(Dec):
    tyvars: list[str]
    bindings: list[tuple[str, FnExp]]
    line: int = 0


@dataclass
class FunClause(Node):
    """One clause of a ``fun`` binding: name, curried argument patterns,
    optional result type constraint, and body."""

    name: str
    pats: list[Pat]
    result_ty: Ty | None
    body: Exp
    line: int = 0


@dataclass
class FunDec(Dec):
    tyvars: list[str]
    #: Each element groups the clauses of one function.
    functions: list[list[FunClause]] = field(default_factory=list)
    line: int = 0


@dataclass
class TypeDec(Dec):
    bindings: list[tuple[list[str], str, Ty]]
    line: int = 0


@dataclass
class ConBind(Node):
    name: str
    arg_ty: Ty | None
    line: int = 0


@dataclass
class DatatypeDec(Dec):
    bindings: list[tuple[list[str], str, list[ConBind]]]
    #: ``withtype`` abbreviations elaborated along with the datatypes.
    withtypes: list[tuple[list[str], str, Ty]] = field(default_factory=list)
    line: int = 0


@dataclass
class DatatypeReplDec(Dec):
    """``datatype t = datatype A.u`` -- datatype replication."""

    name: str
    path: Path
    line: int = 0


@dataclass
class AbstypeDec(Dec):
    """``abstype ... with decs end`` (treated as datatype + local)."""

    bindings: list[tuple[list[str], str, list[ConBind]]]
    body: list[Dec]
    line: int = 0


@dataclass
class ExceptionDec(Dec):
    #: Each binding is (name, optional argument type, optional alias path).
    bindings: list[tuple[str, Ty | None, Path | None]]
    line: int = 0


@dataclass
class LocalDec(Dec):
    private: list[Dec]
    public: list[Dec]
    line: int = 0


@dataclass
class OpenDec(Dec):
    paths: list[Path]
    line: int = 0
    #: Elaborator records, per path, the list of value/constructor names
    #: made visible, so the evaluator can splice the right dynamic fields.
    info: object = None


@dataclass
class FixityDec(Dec):
    """``infix``/``infixr``/``nonfix`` -- consumed entirely by the parser
    but kept in the AST so units re-parsed from bin files agree."""

    assoc: str  # "left" | "right" | "non"
    precedence: int
    names: list[str]
    line: int = 0


# ---------------------------------------------------------------------------
# Module language
# ---------------------------------------------------------------------------


@dataclass
class StrExp(Node):
    pass


@dataclass
class StructStrExp(StrExp):
    decs: list[Dec]
    line: int = 0


@dataclass
class VarStrExp(StrExp):
    path: Path
    line: int = 0


@dataclass
class AppStrExp(StrExp):
    """Functor application; the functor may live inside a structure
    (``Lib.Sort(Arg)``) -- a slice of the higher-order module style the
    paper's §10 discusses."""

    functor_path: Path
    arg: StrExp
    line: int = 0
    #: Set by the elaborator to "functor" when the applied functor takes
    #: a functor-valued argument, so the evaluator resolves the argument
    #: path in the functor namespace.
    info: object = None


@dataclass
class LetStrExp(StrExp):
    decs: list[Dec]
    body: StrExp
    line: int = 0


@dataclass
class ConstraintStrExp(StrExp):
    body: StrExp
    sig: "SigExp"
    opaque: bool
    line: int = 0


@dataclass
class SigExp(Node):
    pass


@dataclass
class SigSigExp(SigExp):
    specs: list["Spec"]
    line: int = 0


@dataclass
class VarSigExp(SigExp):
    name: str
    line: int = 0


@dataclass
class WhereTypeSigExp(SigExp):
    base: SigExp
    tyvars: list[str]
    path: Path
    ty: Ty
    line: int = 0


@dataclass
class Spec(Node):
    pass


@dataclass
class ValSpec(Spec):
    bindings: list[tuple[str, Ty]]
    line: int = 0


@dataclass
class TypeSpec(Spec):
    #: (tyvars, name, optional transparent definition)
    bindings: list[tuple[list[str], str, Ty | None]]
    equality: bool = False  # True for ``eqtype``
    line: int = 0


@dataclass
class DatatypeSpec(Spec):
    bindings: list[tuple[list[str], str, list[ConBind]]]
    line: int = 0


@dataclass
class ExceptionSpec(Spec):
    bindings: list[tuple[str, Ty | None]]
    line: int = 0


@dataclass
class StructureSpec(Spec):
    bindings: list[tuple[str, SigExp]]
    line: int = 0


@dataclass
class IncludeSpec(Spec):
    sig: SigExp
    line: int = 0


@dataclass
class SharingSpec(Spec):
    """``sharing type p1 = p2 = ...``"""

    paths: list[Path]
    line: int = 0


# ---------------------------------------------------------------------------
# Top-level (module-level) declarations
# ---------------------------------------------------------------------------


@dataclass
class StrBind(Node):
    name: str
    sig: SigExp | None
    opaque: bool
    body: StrExp
    line: int = 0


@dataclass
class StructureDec(Dec):
    bindings: list[StrBind]
    line: int = 0


@dataclass
class SignatureDec(Dec):
    bindings: list[tuple[str, SigExp]]
    line: int = 0


@dataclass
class FctParamSpec(Node):
    """A *functor-valued* parameter spec:
    ``functor G (X : param_sig) : result_sig`` -- the higher-order form
    (Appel & MacQueen §10.2; SML/NJ extension)."""

    name: str
    inner_param: str
    param_sig: SigExp
    result_sig: SigExp
    line: int = 0


@dataclass
class FctBind(Node):
    name: str
    param_name: str
    param_sig: SigExp | None
    result_sig: SigExp | None
    opaque: bool
    body: StrExp
    line: int = 0
    #: Set instead of param_name/param_sig when the parameter is itself
    #: a functor.
    fct_param: FctParamSpec | None = None


@dataclass
class FunctorDec(Dec):
    bindings: list[FctBind]
    line: int = 0
