"""Front end for the Standard ML subset: lexer, AST, and parser.

This package is the *source language* substrate of the reproduction.  The
separate-compilation machinery of Appel & MacQueen (PLDI 1994) operates on
compilation units whose contents are Standard ML module declarations;
everything in this package exists so that those units are real programs
rather than mocks.

Public entry points:

- :func:`repro.lang.lexer.tokenize` -- source text to a token list.
- :func:`repro.lang.parser.parse_program` -- source text to a list of
  top-level declarations (:class:`repro.lang.ast.Dec` subclasses).
- :mod:`repro.lang.ast` -- the abstract syntax tree node classes.
"""

from repro.lang.errors import LexError, ParseError, SourceError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expression, parse_program

__all__ = [
    "LexError",
    "ParseError",
    "SourceError",
    "tokenize",
    "parse_program",
    "parse_expression",
]
