"""Conservative free-name analysis over the AST.

Two clients:

- Functor elaboration trims the functor's closure environment to the
  names its body mentions, so that dehydrated functors reference imported
  entities through (pid, index) stubs instead of dragging the whole
  compilation context into the bin file (see DESIGN.md).
- The compilation manager's dependency analyzer
  (:mod:`repro.cm.depend`) finds which other units a source file
  mentions.

The analysis is deliberately *conservative*: it collects every name
mentioned in a reference position, without subtracting locally-bound
names.  Over-approximation only costs a little precision (an extra
dependency edge, a slightly fatter closure); under-approximation would be
unsound.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.lang import ast

#: The namespaces that matter for inter-unit dependencies (footnote 4:
#: separately compiled units hold structures, signatures and functors).
#: Shared by the dependency analyzer and the static analyzer.
MODULE_NAMESPACES = ("structures", "signatures", "functors")


@dataclass
class Mentions:
    """Names mentioned per namespace."""

    values: set[str] = field(default_factory=set)
    tycons: set[str] = field(default_factory=set)
    structures: set[str] = field(default_factory=set)
    signatures: set[str] = field(default_factory=set)
    functors: set[str] = field(default_factory=set)

    def update(self, other: "Mentions") -> None:
        self.values |= other.values
        self.tycons |= other.tycons
        self.structures |= other.structures
        self.signatures |= other.signatures
        self.functors |= other.functors

    def module_names(self) -> dict[str, set[str]]:
        """The module-namespace slices as a dict (see
        :data:`MODULE_NAMESPACES`)."""
        return {ns: getattr(self, ns) for ns in MODULE_NAMESPACES}


def _mention_path(out: Mentions, path: ast.Path, namespace: str) -> None:
    if len(path) > 1:
        out.structures.add(path[0])
    else:
        getattr(out, namespace).add(path[0])


def mentioned_names(node) -> Mentions:
    """All names mentioned by an AST node (or list of nodes)."""
    out = Mentions()
    _walk(node, out)
    return out


def _walk(node, out: Mentions) -> None:
    if isinstance(node, (list, tuple)):
        for item in node:
            _walk(item, out)
        return
    if not dataclasses.is_dataclass(node):
        return

    if isinstance(node, ast.VarExp):
        _mention_path(out, node.path, "values")
    elif isinstance(node, ast.VarPat):
        # Might be a binder or a nullary-constructor use; include it.
        out.values.add(node.name)
    elif isinstance(node, ast.ConPat):
        _mention_path(out, node.path, "values")
    elif isinstance(node, ast.ConTy):
        _mention_path(out, node.path, "tycons")
    elif isinstance(node, ast.VarStrExp):
        out.structures.add(node.path[0])
    elif isinstance(node, ast.AppStrExp):
        _mention_path(out, node.functor_path, "functors")
    elif isinstance(node, ast.VarSigExp):
        out.signatures.add(node.name)
    elif isinstance(node, ast.OpenDec):
        for path in node.paths:
            out.structures.add(path[0])
    elif isinstance(node, ast.DatatypeReplDec):
        _mention_path(out, node.path, "tycons")
    elif isinstance(node, ast.ExceptionDec):
        for _name, _ty, alias in node.bindings:
            if alias is not None:
                _mention_path(out, alias, "values")
    elif isinstance(node, ast.WhereTypeSigExp):
        _mention_path(out, node.path, "tycons")
    elif isinstance(node, ast.SharingSpec):
        for path in node.paths:
            _mention_path(out, path, "tycons")

    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, (list, tuple)):
            _walk(value, out)
        elif dataclasses.is_dataclass(value) and not isinstance(value, type):
            _walk(value, out)


def module_level_mentions(decs: list[ast.Dec]) -> Mentions:
    """Mentions restricted to the module namespaces (structures,
    signatures, functors) -- what inter-unit dependency analysis needs.

    Names *defined* by the declarations themselves are subtracted, since
    a unit does not depend on itself.
    """
    out = mentioned_names(decs)
    defined = defined_module_names(decs)
    return Mentions(
        values=set(),
        tycons=set(),
        structures=out.structures - defined["structures"],
        signatures=out.signatures - defined["signatures"],
        functors=out.functors - defined["functors"],
    )


def defined_module_names(decs: list[ast.Dec]) -> dict[str, set[str]]:
    """The module-level names a declaration list defines (including
    through ``local..in..end``)."""
    defined = {"structures": set(), "signatures": set(), "functors": set()}

    def scan(dec_list) -> None:
        for dec in dec_list:
            if isinstance(dec, ast.StructureDec):
                for binding in dec.bindings:
                    defined["structures"].add(binding.name)
            elif isinstance(dec, ast.SignatureDec):
                for name, _sig in dec.bindings:
                    defined["signatures"].add(name)
            elif isinstance(dec, ast.FunctorDec):
                for binding in dec.bindings:
                    defined["functors"].add(binding.name)
            elif isinstance(dec, ast.LocalDec):
                scan(dec.private)
                scan(dec.public)

    scan(decs)
    return defined
