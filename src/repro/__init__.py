"""repro: a reproduction of Appel & MacQueen,
"Separate Compilation for Standard ML" (PLDI 1994).

The package builds, from scratch, everything the paper's mechanisms need:

- a compiler front end and elaborator for a substantial Standard ML
  subset (:mod:`repro.lang`, :mod:`repro.semant`, :mod:`repro.elab`);
- a dynamic semantics (:mod:`repro.dynamic`) and interactive top level
  (:mod:`repro.interactive`);
- the paper's contribution: compilation units with import/export pid
  vectors (:mod:`repro.units`), dehydration/rehydration of static
  environments (:mod:`repro.pickle`), intrinsic pids via 128-bit CRC
  (:mod:`repro.pids`), type-safe linkage (:mod:`repro.linker`), and the
  IRM compilation manager with cutoff recompilation plus timestamp and
  smart baselines (:mod:`repro.cm`);
- synthetic workloads for the evaluation (:mod:`repro.workload`).

Quickstart::

    from repro import CutoffBuilder, Project

    project = Project.from_sources({
        "base": "structure Base = struct fun double x = x * 2 end",
        "app":  "structure App = struct val answer = Base.double 21 end",
    })
    builder = CutoffBuilder(project)
    print(builder.build().summary())          # 2 compiled
    exports = builder.link()
    print(exports["app"].structures["App"].values["answer"])   # 42
"""

from repro.basis import BASIS_PID, Basis, make_basis
from repro.cm import (
    BinRecord,
    BinStore,
    BuildReport,
    CutoffBuilder,
    DependencyError,
    Group,
    GroupBuilder,
    Project,
    SmartBuilder,
    TimestampBuilder,
)
from repro.elab import ElabError
from repro.interactive import REPL, VisibleCompiler
from repro.lang import LexError, ParseError
from repro.linker import LinkError, Linker, check_consistency
from repro.pickle import PickleError, UnpickleError, dehydrate, rehydrate
from repro.pids import crc128_hex, intrinsic_pid
from repro.units import CompiledUnit, Session, compile_unit, execute_unit
from repro.workload import generate_workload

__version__ = "1.0.0"

__all__ = [
    "Basis",
    "BASIS_PID",
    "make_basis",
    "Project",
    "BinStore",
    "BinRecord",
    "BuildReport",
    "CutoffBuilder",
    "TimestampBuilder",
    "SmartBuilder",
    "Group",
    "GroupBuilder",
    "DependencyError",
    "ElabError",
    "LexError",
    "ParseError",
    "LinkError",
    "Linker",
    "check_consistency",
    "PickleError",
    "UnpickleError",
    "dehydrate",
    "rehydrate",
    "crc128_hex",
    "intrinsic_pid",
    "CompiledUnit",
    "Session",
    "compile_unit",
    "execute_unit",
    "REPL",
    "VisibleCompiler",
    "generate_workload",
    "__version__",
]
