"""Elaboration (type and module) errors."""

from repro.lang.errors import SourceError


class ElabError(SourceError):
    """A static-semantics violation: type clash, unbound name, signature
    mismatch, and so on."""
