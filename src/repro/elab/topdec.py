"""Top-level elaboration entry point."""

from __future__ import annotations

import repro.elab.modules  # noqa: F401  (registers module-dec handlers)
from repro.elab.core import Elaborator
from repro.lang import ast
from repro.semant.env import Env
from repro.semant.stamps import StampGenerator


def elaborate_decs(
    decs: list[ast.Dec],
    context: Env,
    stamps: StampGenerator | None = None,
) -> tuple[Env, Elaborator]:
    """Elaborate a sequence of top-level declarations against ``context``.

    Returns the frame of new bindings (the unit's static export) and the
    elaborator (whose ``new_stamps`` set identifies the stamps this unit
    owns -- needed by the pickler and the intrinsic-pid hasher).

    The AST is annotated in place; the caller keeps it as the unit's
    "code".
    """
    el = Elaborator(context, stamps)
    frame = el.push_frame()
    for dec in decs:
        el.elab_dec(dec)
    el.pop_frame()
    export = Env()
    export.absorb(frame)
    return export, el
