"""Exhaustiveness and redundancy analysis for matches.

Every real SML compiler warns on ``match nonexhaustive`` and ``match
redundant``; SML/NJ (the paper's substrate) certainly did.  This module
implements the classic usefulness algorithm (a la Maranget) over the
elaborated patterns:

- a rule is *redundant* if no value can reach it (its pattern is not
  "useful" with respect to the rules above it);
- a match is *nonexhaustive* if a wildcard is still useful after all
  rules.

The analysis runs after type checking, so every pattern's type is known;
constructor completeness comes from the scrutinee's datatype.
"""

from __future__ import annotations

from repro.lang import ast
from repro.semant.types import (
    ConType,
    DatatypeTycon,
    FlexRecord,
    FunType,
    PolyType,
    RecordType,
    Type,
    prune,
    subst_bound,
)


class _SPat:
    """A simplified pattern: wildcard, or constructor with arguments."""

    __slots__ = ("key", "args", "arg_types", "family")

    def __init__(self, key, args, arg_types, family):
        self.key = key            # None for wildcard
        self.args = args          # list[_SPat]
        self.arg_types = arg_types
        #: The complete set of sibling constructor keys, or None when the
        #: constructor family is (effectively) infinite/open.
        self.family = family

    @classmethod
    def wild(cls) -> "_SPat":
        return cls(None, [], [], None)

    def is_wild(self) -> bool:
        return self.key is None


def check_match(rules, scrutinee_ty: Type, line: int, kind: str,
                warn) -> None:
    """Analyze one match; report through ``warn(message, line)``.

    Args:
        rules: list of (pattern, _) rule pairs (only patterns are used).
        scrutinee_ty: the type all rule patterns share.
        line: source line for the warnings.
        kind: "case"/"fn"/"fun"/"val"/"handle" -- handles are allowed to
            be nonexhaustive (unhandled exceptions re-raise by design),
            and val bindings warn with their own wording.
        warn: sink for (message, line).
    """
    rows: list[list[_SPat]] = []
    for index, (pat, _rhs) in enumerate(rules):
        row = [_simplify(pat, scrutinee_ty)]
        if rows and not _useful(rows, row):
            warn(f"{kind}: rule {index + 1} is redundant", line)
        rows.append(row)
    if kind == "handle":
        return
    if _useful(rows, [_SPat.wild()]):
        if kind == "val":
            warn("val binding is not exhaustive", line)
        else:
            warn(f"{kind}: match is not exhaustive", line)


def check_clauses(clauses, arg_types: list[Type], line: int, warn) -> None:
    """Analyze a clausal ``fun`` definition (a multi-column match)."""
    rows: list[list[_SPat]] = []
    for index, clause in enumerate(clauses):
        row = [_simplify(pat, ty)
               for pat, ty in zip(clause.pats, arg_types)]
        if rows and not _useful(rows, row):
            warn(f"fun {clause.name}: clause {index + 1} is redundant",
                 clause.line or line)
        rows.append(row)
    if _useful(rows, [_SPat.wild() for _ in arg_types]):
        warn(f"fun {clauses[0].name}: match is not exhaustive", line)


# ---------------------------------------------------------------------------
# Pattern simplification
# ---------------------------------------------------------------------------


def _simplify(pat: ast.Pat, ty: Type) -> _SPat:
    ty = prune(ty)
    if isinstance(pat, ast.WildPat):
        return _SPat.wild()
    if isinstance(pat, ast.VarPat):
        if isinstance(pat.info, ast.ConInfo):
            return _con_spat(pat.info, None, ty)
        return _SPat.wild()
    if isinstance(pat, ast.AsPat):
        return _simplify(pat.pat, ty)
    if isinstance(pat, ast.TypedPat):
        return _simplify(pat.pat, ty)
    if isinstance(pat, ast.ConstPat):
        # Literal families are effectively infinite: never complete.
        return _SPat((pat.kind, pat.value), [], [], None)
    if isinstance(pat, ast.ConPat):
        assert isinstance(pat.info, ast.ConInfo)
        return _con_spat(pat.info, pat.arg, ty)
    if isinstance(pat, ast.TuplePat):
        if not pat.parts:
            return _SPat("()", [], [], frozenset({"()"}))
        types = _tuple_field_types(ty, len(pat.parts))
        args = [_simplify(p, t) for p, t in zip(pat.parts, types)]
        return _SPat("(tuple)", args, types, frozenset({"(tuple)"}))
    if isinstance(pat, ast.RecordPat):
        labels, types = _record_field_types(ty)
        by_label = dict(pat.fields)
        args = []
        for label, field_ty in zip(labels, types):
            if label in by_label:
                args.append(_simplify(by_label[label], field_ty))
            else:
                args.append(_SPat.wild())
        return _SPat("(record)", args, types, frozenset({"(record)"}))
    if isinstance(pat, ast.ListPat):
        return _simplify(_desugar_list(pat), ty)
    raise AssertionError(f"unknown pattern {pat!r}")


def _desugar_list(pat: ast.ListPat) -> ast.Pat:
    out: ast.Pat = ast.VarPat("nil", pat.line, info=ast.ConInfo("nil",
                                                                False))
    for item in reversed(pat.parts):
        out = ast.ConPat(("::",), ast.TuplePat([item, out], pat.line),
                        pat.line, info=ast.ConInfo("::", True))
    return out


def _con_spat(info: ast.ConInfo, arg: ast.Pat | None, ty: Type) -> _SPat:
    if info.name == "ref":
        ty = prune(ty)
        inner = ty.args[0] if isinstance(ty, ConType) and ty.args \
            else _exn_arg_type()
        return _SPat("ref", [_simplify(arg, inner)], [inner],
                     frozenset({"ref"}))
    if info.is_exn:
        # Exceptions are an open family: never complete.
        arg_spat = [] if arg is None else [_simplify(arg, _exn_arg_type())]
        return _SPat(("exn", info.name), arg_spat,
                     [_exn_arg_type()] if arg is not None else [], None)
    family, arg_ty = _constructor_family(info.name, ty)
    if arg is None:
        return _SPat(info.name, [], [], family)
    return _SPat(info.name, [_simplify(arg, arg_ty)],
                 [arg_ty], family)


def _exn_arg_type() -> Type:
    from repro.semant.types import TyVar

    return TyVar(level=1 << 30)


def _constructor_family(name: str, ty: Type):
    """The sibling-constructor key set for ``name`` at type ``ty``, and
    the instantiated argument type of ``name`` itself."""
    ty = prune(ty)
    if isinstance(ty, ConType) and isinstance(ty.tycon, DatatypeTycon):
        tycon = ty.tycon
        family = frozenset(c.name for c in tycon.constructors)
        arg_ty = _instantiate_arg(tycon, name, ty)
        return family, arg_ty
    # Scrutinee type unknown (still a variable): treat as open.
    return None, _exn_arg_type()


def _instantiate_arg(tycon: DatatypeTycon, name: str, at: ConType) -> Type:
    for con in tycon.constructors:
        if con.name != name:
            continue
        scheme = con.scheme
        if isinstance(scheme, PolyType):
            body = subst_bound(scheme.body, tuple(at.args))
        else:
            body = scheme
        body = prune(body)
        if isinstance(body, FunType):
            return body.dom
        return _exn_arg_type()
    return _exn_arg_type()


def _tuple_field_types(ty: Type, n: int) -> list[Type]:
    ty = prune(ty)
    if isinstance(ty, RecordType) and len(ty.fields) == n:
        return [t for _, t in ty.fields]
    return [_exn_arg_type() for _ in range(n)]


def _record_field_types(ty: Type):
    ty = prune(ty)
    if isinstance(ty, RecordType):
        return list(ty.labels()), [t for _, t in ty.fields]
    if isinstance(ty, FlexRecord):
        labels = sorted(ty.fields)
        return labels, [ty.fields[label] for label in labels]
    return [], []


# ---------------------------------------------------------------------------
# Usefulness (Maranget's U)
# ---------------------------------------------------------------------------


def _useful(matrix: list[list[_SPat]], row: list[_SPat]) -> bool:
    """Is there a value matching ``row`` that no row of ``matrix``
    matches?"""
    if not row:
        return not matrix
    head, rest = row[0], row[1:]
    if head.is_wild():
        keys = {r[0].key for r in matrix if not r[0].is_wild()}
        family = _family_of(matrix)
        if family is not None and keys >= family:
            # The matrix's first column covers a complete family:
            # specialize against each constructor.
            for key in family:
                arity = _key_arity(matrix, key)
                spec_matrix = _specialize(matrix, key, arity)
                spec_row = [_SPat.wild() for _ in range(arity)] + rest
                if _useful(spec_matrix, spec_row):
                    return True
            return False
        # Incomplete first column: the default matrix decides.
        default = [r[1:] for r in matrix if r[0].is_wild()]
        return _useful(default, rest)
    arity = len(head.args)
    spec_matrix = _specialize(matrix, head.key, arity)
    return _useful(spec_matrix, head.args + rest)


def _family_of(matrix: list[list[_SPat]]):
    for r in matrix:
        if not r[0].is_wild():
            return r[0].family
    return None


def _key_arity(matrix: list[list[_SPat]], key) -> int:
    for r in matrix:
        if not r[0].is_wild() and r[0].key == key:
            return len(r[0].args)
    # A family member never named in the matrix: only wildcard rows can
    # match it, and wildcards expand to wildcards under any arity, so 0
    # is consistent.
    return 0


def _specialize(matrix: list[list[_SPat]], key, arity: int):
    out = []
    for r in matrix:
        head = r[0]
        if head.is_wild():
            out.append([_SPat.wild() for _ in range(arity)] + r[1:])
        elif head.key == key:
            pad = head.args + [_SPat.wild()] * (arity - len(head.args))
            out.append(pad + r[1:])
    return out
