"""Realizations: maps from flexible (signature-bound) tycon stamps to
actual type constructors or type functions.

A realization is the output of signature matching and the input to
building a matched structure's environment.  ``realize_env`` produces a
fresh environment in which every flexible tycon has been replaced by its
realization -- this implements both transparent matching results,
``where type``, and (with a freshly generated realization) opaque
matching results.
"""

from __future__ import annotations

from repro.semant.env import Env, Structure, ValueBinding
from repro.semant.types import (
    AbstractTycon,
    ConType,
    Constructor,
    DatatypeTycon,
    FunType,
    PolyType,
    RecordType,
    TypeFun,
    Type,
    apply_typefun,
    compute_datatype_equality,
    prune,
)

#: stamp id -> Tycon | TypeFun
Realization = dict


def realize_type(ty: Type, rlz: Realization) -> Type:
    """Rewrite ``ty`` replacing realized tycons."""
    if not rlz:
        return ty
    ty = prune(ty)
    if isinstance(ty, ConType):
        args = tuple(realize_type(a, rlz) for a in ty.args)
        tycon = ty.tycon
        stamp = getattr(tycon, "stamp", None)
        if stamp is not None and stamp.id in rlz:
            target = rlz[stamp.id]
            if isinstance(target, TypeFun):
                return apply_typefun(target, args)
            return ConType(target, args)
        return ConType(tycon, args)
    if isinstance(ty, RecordType):
        return RecordType(
            tuple((label, realize_type(t, rlz)) for label, t in ty.fields)
        )
    if isinstance(ty, FunType):
        return FunType(realize_type(ty.dom, rlz), realize_type(ty.rng, rlz))
    if isinstance(ty, PolyType):
        return PolyType(ty.arity, realize_type(ty.body, rlz), ty.eqflags)
    return ty


def realize_env(env: Env, rlz: Realization, fresh_stamp) -> Env:
    """Copy ``env``'s frame with the realization applied.

    ``fresh_stamp`` mints stamps for the copied substructures.  Data
    constructor bindings whose datatype is realized to an actual
    :class:`DatatypeTycon` are replaced by the actual's constructors (so
    constructor identity follows the realized type, as transparent
    matching requires).
    """
    out = Env()
    for name, tycon in env.tycons.items():
        stamp = getattr(tycon, "stamp", None)
        if stamp is not None and stamp.id in rlz:
            out.bind_tycon(name, rlz[stamp.id])
        elif isinstance(tycon, TypeFun):
            out.bind_tycon(
                name, TypeFun(tycon.arity, realize_type(tycon.body, rlz),
                              tycon.name))
        else:
            out.bind_tycon(name, tycon)
    for name, vb in env.values.items():
        out.bind_value(name, _realize_value_binding(vb, rlz))
    for name, struct in env.structures.items():
        out.bind_structure(
            name,
            Structure(fresh_stamp(), struct.name,
                      realize_env(struct.env, rlz, fresh_stamp)),
        )
    # Signature and functor namespaces cannot be specified inside
    # signatures in this subset; nothing to copy.
    return out


def _realize_value_binding(vb: ValueBinding, rlz: Realization) -> ValueBinding:
    con = vb.con
    if con is not None and con.tycon is not None and con.tycon.stamp.id in rlz:
        target = rlz[con.tycon.stamp.id]
        if isinstance(target, DatatypeTycon):
            actual = _find_constructor(target, con.name)
            if actual is not None:
                return ValueBinding(actual.scheme, actual)
        # Datatype realized to something without constructors: keep a
        # structurally-realized copy (arises only transiently during
        # matching error paths).
    scheme = realize_type(vb.scheme, rlz)
    if con is None:
        return ValueBinding(scheme)
    new_con = Constructor(con.name, _realized_tycon(con.tycon, rlz),
                          scheme, con.has_arg, con.is_exn)
    return ValueBinding(scheme, new_con)


def _realized_tycon(tycon, rlz: Realization):
    if tycon is None:
        return None
    target = rlz.get(tycon.stamp.id)
    if isinstance(target, DatatypeTycon):
        return target
    return tycon


def _find_constructor(tycon: DatatypeTycon, name: str) -> Constructor | None:
    for con in tycon.constructors:
        if con.name == name:
            return con
    return None


def fresh_abstract_realization(flex_tycons: list, fresh_stamp) -> Realization:
    """Build the realization used by *opaque* matching and by
    instantiating a named signature: every flexible tycon maps to a brand
    new tycon of the same shape.

    Datatype bundles are cloned in two passes so mutual recursion among
    constructor types lands on the clones.
    """
    rlz: Realization = {}
    datatype_pairs: list[tuple[DatatypeTycon, DatatypeTycon]] = []
    for tycon in flex_tycons:
        if isinstance(tycon, DatatypeTycon):
            clone = DatatypeTycon(fresh_stamp(), tycon.name, tycon.arity)
            rlz[tycon.stamp.id] = clone
            datatype_pairs.append((tycon, clone))
        elif isinstance(tycon, AbstractTycon):
            rlz[tycon.stamp.id] = AbstractTycon(
                fresh_stamp(), tycon.name, tycon.arity, tycon.eq)
        else:
            raise AssertionError(f"flexible tycon of odd class: {tycon!r}")
    for original, clone in datatype_pairs:
        for con in original.constructors:
            clone.constructors.append(
                Constructor(con.name, clone,
                            realize_type(con.scheme, rlz), con.has_arg,
                            con.is_exn))
    compute_datatype_equality([clone for _, clone in datatype_pairs])
    return rlz
