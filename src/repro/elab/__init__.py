"""The elaborator: static semantics of the SML subset.

Elaboration turns parsed declarations into semantic objects
(:mod:`repro.semant`) under a static environment, performing
Hindley-Milner type inference for the core language and signature
matching for the module language.  It also annotates the AST in place
with the resolution facts the evaluator needs (see
:mod:`repro.lang.ast`).

The public entry point is :func:`repro.elab.topdec.elaborate_decs`.
"""

from repro.elab.errors import ElabError
from repro.elab.topdec import elaborate_decs

__all__ = ["ElabError", "elaborate_decs"]
