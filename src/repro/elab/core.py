"""Core-language elaboration: expressions, patterns, core declarations.

The :class:`Elaborator` carries the mutable context (current environment,
let-level, type-variable scopes, stamp generator).  Module-language
elaboration lives in :mod:`repro.elab.modules` and drives these methods.
"""

from __future__ import annotations

from repro.elab.errors import ElabError
from repro.elab.unify import unify
from repro.lang import ast
from repro.semant import prim
from repro.semant.env import Env, ValueBinding
from repro.semant.stamps import StampGenerator, default_generator
from repro.semant.types import (
    BoundVar,
    ConType,
    Constructor,
    DatatypeTycon,
    FlexRecord,
    FunType,
    PolyType,
    RecordType,
    TyVar,
    Type,
    TypeFun,
    apply_typefun,
    compute_datatype_equality,
    instantiate,
    prune,
    tuple_type,
    unit_type,
)


class _TyvarScope:
    """One scope of explicit/implicit type variables."""

    def __init__(self, flexible: bool, level: int):
        self.table: dict[str, Type] = {}
        self.flexible = flexible
        self.level = level


class Elaborator:
    """Elaboration context for one compilation unit (or one interactive
    declaration)."""

    def __init__(self, env: Env, stamps: StampGenerator | None = None):
        self.env = env
        self.level = 0
        self.stamps = stamps or default_generator()
        self._tyvar_scopes: list[_TyvarScope] = []
        #: Stamps minted while elaborating the current unit; the pickler
        #: uses this set to tell local objects from imported ones.
        self.new_stamps: set[int] = set()
        #: (message, line) warnings: nonexhaustive/redundant matches.
        self.warnings: list[tuple[str, int]] = []

    def warn(self, message: str, line: int) -> None:
        if (message, line) not in self.warnings:
            self.warnings.append((message, line))

    # -- plumbing -----------------------------------------------------------

    def fresh_stamp(self):
        stamp = self.stamps.fresh()
        self.new_stamps.add(stamp.id)
        return stamp

    def fresh_tyvar(self, eq: bool = False) -> TyVar:
        return TyVar(self.level, eq=eq)

    def error(self, message: str, line: int = 0):
        raise ElabError(message, line, 0)

    def push_frame(self) -> Env:
        self.env = self.env.child()
        return self.env

    def pop_frame(self) -> Env:
        frame = self.env
        assert frame.parent is not None
        self.env = frame.parent
        return frame

    def push_tyvars(self, names: list[str], flexible: bool) -> _TyvarScope:
        scope = _TyvarScope(flexible, self.level)
        for name in names:
            scope.table[name] = TyVar(self.level, eq=name.startswith("''"))
        self._tyvar_scopes.append(scope)
        return scope

    def pop_tyvars(self) -> _TyvarScope:
        return self._tyvar_scopes.pop()

    def lookup_tyvar(self, name: str, line: int) -> Type:
        for scope in reversed(self._tyvar_scopes):
            if name in scope.table:
                return scope.table[name]
        for scope in reversed(self._tyvar_scopes):
            if scope.flexible:
                var = TyVar(scope.level, eq=name.startswith("''"))
                scope.table[name] = var
                return var
        self.error(f"unbound type variable {name}", line)

    # -- syntactic types ------------------------------------------------------

    def elab_ty(self, ty: ast.Ty) -> Type:
        if isinstance(ty, ast.TyVarTy):
            return self.lookup_tyvar(ty.name, ty.line)
        if isinstance(ty, ast.ConTy):
            return self._elab_conty(ty)
        if isinstance(ty, ast.TupleTy):
            return tuple_type([self.elab_ty(t) for t in ty.parts])
        if isinstance(ty, ast.RecordTy):
            labels = [label for label, _ in ty.fields]
            if len(set(labels)) != len(labels):
                self.error("duplicate record label in type", ty.line)
            return RecordType(
                tuple((label, self.elab_ty(t)) for label, t in ty.fields)
            )
        if isinstance(ty, ast.ArrowTy):
            return FunType(self.elab_ty(ty.dom), self.elab_ty(ty.rng))
        raise AssertionError(f"unknown type syntax {ty!r}")

    def _elab_conty(self, ty: ast.ConTy) -> Type:
        tycon = self.env.lookup_tycon_path(ty.path)
        if tycon is None:
            self.error(f"unbound type constructor {ast.path_str(ty.path)}",
                       ty.line)
        args = tuple(self.elab_ty(t) for t in ty.args)
        if isinstance(tycon, TypeFun):
            if len(args) != tycon.arity:
                self.error(
                    f"type {ast.path_str(ty.path)} expects {tycon.arity} "
                    f"argument(s), got {len(args)}", ty.line)
            return apply_typefun(tycon, args)
        if len(args) != tycon.arity:
            self.error(
                f"type constructor {ast.path_str(ty.path)} expects "
                f"{tycon.arity} argument(s), got {len(args)}", ty.line)
        return ConType(tycon, args)

    # -- patterns -------------------------------------------------------------

    def elab_pat(self, pat: ast.Pat, bindings: dict[str, Type]) -> Type:
        """Elaborate a pattern, accumulating variable bindings.

        Returns the pattern's type; annotates constructor nodes.
        """
        if isinstance(pat, ast.WildPat):
            return self.fresh_tyvar()
        if isinstance(pat, ast.VarPat):
            return self._elab_varpat(pat, bindings)
        if isinstance(pat, ast.ConstPat):
            return _const_type(pat.kind)
        if isinstance(pat, ast.ConPat):
            return self._elab_conpat(pat, bindings)
        if isinstance(pat, ast.TuplePat):
            if not pat.parts:
                return unit_type()
            return tuple_type([self.elab_pat(p, bindings) for p in pat.parts])
        if isinstance(pat, ast.RecordPat):
            fields = []
            for label, p in pat.fields:
                fields.append((label, self.elab_pat(p, bindings)))
            if len({label for label, _ in fields}) != len(fields):
                self.error("duplicate record label in pattern", pat.line)
            if pat.flexible:
                return FlexRecord(dict(fields), self.level)
            return RecordType(tuple(fields))
        if isinstance(pat, ast.ListPat):
            elem = self.fresh_tyvar()
            for p in pat.parts:
                unify(self.elab_pat(p, bindings), elem, pat.line)
            return prim.list_type(elem)
        if isinstance(pat, ast.AsPat):
            if pat.name in bindings:
                self.error(f"duplicate variable {pat.name} in pattern",
                           pat.line)
            ty = self.elab_pat(pat.pat, bindings)
            bindings[pat.name] = ty
            return ty
        if isinstance(pat, ast.TypedPat):
            ty = self.elab_pat(pat.pat, bindings)
            unify(ty, self.elab_ty(pat.ty), pat.line)
            return ty
        raise AssertionError(f"unknown pattern {pat!r}")

    def _elab_varpat(self, pat: ast.VarPat, bindings: dict[str, Type]) -> Type:
        binding = self.env.lookup_value(pat.name)
        if binding is not None and binding.is_constructor():
            con = binding.con
            if con.has_arg:
                self.error(
                    f"constructor {pat.name} used without an argument",
                    pat.line)
            pat.info = ast.ConInfo(con.name, False, con.is_exn)
            return instantiate(binding.scheme, self.level)
        pat.info = "var"
        if pat.name in bindings:
            self.error(f"duplicate variable {pat.name} in pattern", pat.line)
        var = self.fresh_tyvar()
        bindings[pat.name] = var
        return var

    def _elab_conpat(self, pat: ast.ConPat, bindings: dict[str, Type]) -> Type:
        if pat.path == ("ref",) and pat.arg is not None:
            # `ref` is a primitive value, but the Definition lets it be
            # used as a (complete, single-constructor) pattern.
            pat.info = ast.ConInfo("ref", True)
            inner = self.elab_pat(pat.arg, bindings)
            return prim.ref_type(inner)
        binding = self.env.lookup_value_path(pat.path)
        if binding is None or not binding.is_constructor():
            self.error(
                f"{ast.path_str(pat.path)} is not a constructor", pat.line)
        con = binding.con
        pat.info = ast.ConInfo(con.name, con.has_arg, con.is_exn)
        scheme_inst = instantiate(binding.scheme, self.level)
        if pat.arg is None:
            if con.has_arg:
                self.error(
                    f"constructor {ast.path_str(pat.path)} needs an "
                    f"argument", pat.line)
            return scheme_inst
        if not con.has_arg:
            self.error(
                f"constructor {ast.path_str(pat.path)} takes no argument",
                pat.line)
        fn = prune(scheme_inst)
        assert isinstance(fn, FunType), fn
        arg_ty = self.elab_pat(pat.arg, bindings)
        unify(arg_ty, fn.dom, pat.line)
        return fn.rng

    # -- expressions ---------------------------------------------------------

    def elab_exp(self, exp: ast.Exp) -> Type:
        method = _EXP_DISPATCH.get(type(exp))
        if method is None:
            raise AssertionError(f"unknown expression {exp!r}")
        return method(self, exp)

    def _elab_int(self, exp: ast.IntExp) -> Type:
        return prim.int_type()

    def _elab_word(self, exp: ast.WordExp) -> Type:
        return prim.word_type()

    def _elab_real(self, exp: ast.RealExp) -> Type:
        return prim.real_type()

    def _elab_string(self, exp: ast.StringExp) -> Type:
        return prim.string_type()

    def _elab_char(self, exp: ast.CharExp) -> Type:
        return prim.char_type()

    def _elab_var(self, exp: ast.VarExp) -> Type:
        binding = self.env.lookup_value_path(exp.path)
        if binding is None:
            self.error(f"unbound variable {ast.path_str(exp.path)}",
                       exp.line)
        if binding.is_constructor():
            con = binding.con
            exp.info = ast.ConInfo(con.name, con.has_arg, con.is_exn)
        else:
            exp.info = "var"
        return instantiate(binding.scheme, self.level)

    def _elab_selector(self, exp: ast.SelectorExp) -> Type:
        field = self.fresh_tyvar()
        record = FlexRecord({exp.label: field}, self.level)
        return FunType(record, field)

    def _elab_tuple(self, exp: ast.TupleExp) -> Type:
        if not exp.parts:
            return unit_type()
        return tuple_type([self.elab_exp(e) for e in exp.parts])

    def _elab_record(self, exp: ast.RecordExp) -> Type:
        labels = [label for label, _ in exp.fields]
        if len(set(labels)) != len(labels):
            self.error("duplicate record label", exp.line)
        return RecordType(
            tuple((label, self.elab_exp(e)) for label, e in exp.fields)
        )

    def _elab_list(self, exp: ast.ListExp) -> Type:
        elem = self.fresh_tyvar()
        for e in exp.parts:
            unify(self.elab_exp(e), elem, exp.line)
        return prim.list_type(elem)

    def _elab_seq(self, exp: ast.SeqExp) -> Type:
        ty = unit_type()
        for e in exp.parts:
            ty = self.elab_exp(e)
        return ty

    def _elab_app(self, exp: ast.AppExp) -> Type:
        arg_ty = self.elab_exp(exp.arg)
        fn_ty = self.elab_exp(exp.fn)
        result = self.fresh_tyvar()
        unify(fn_ty, FunType(arg_ty, result), exp.line)
        return result

    def _elab_fn(self, exp: ast.FnExp) -> Type:
        dom = self.fresh_tyvar()
        rng = self.fresh_tyvar()
        for pat, body in exp.rules:
            bindings: dict[str, Type] = {}
            unify(self.elab_pat(pat, bindings), dom, exp.line)
            self.push_frame()
            for name, ty in bindings.items():
                self.env.bind_value(name, ValueBinding(ty))
            unify(self.elab_exp(body), rng, exp.line)
            self.pop_frame()
        self.check_rules(exp.rules, dom, exp.line, "fn")
        return FunType(dom, rng)

    def check_rules(self, rules, scrutinee_ty: Type, line: int,
                    kind: str) -> None:
        from repro.elab.matchcheck import check_match

        check_match(rules, scrutinee_ty, line, kind, self.warn)

    def _elab_let(self, exp: ast.LetExp) -> Type:
        self.push_frame()
        for dec in exp.decs:
            self.elab_dec(dec)
        ty = self.elab_exp(exp.body)
        self.pop_frame()
        return ty

    def _elab_if(self, exp: ast.IfExp) -> Type:
        unify(self.elab_exp(exp.cond), prim.bool_type(), exp.line)
        then_ty = self.elab_exp(exp.then)
        unify(then_ty, self.elab_exp(exp.els), exp.line)
        return then_ty

    def _elab_case(self, exp: ast.CaseExp) -> Type:
        scrutinee = self.elab_exp(exp.scrutinee)
        result = self.fresh_tyvar()
        for pat, body in exp.rules:
            bindings: dict[str, Type] = {}
            unify(self.elab_pat(pat, bindings), scrutinee, exp.line)
            self.push_frame()
            for name, ty in bindings.items():
                self.env.bind_value(name, ValueBinding(ty))
            unify(self.elab_exp(body), result, exp.line)
            self.pop_frame()
        self.check_rules(exp.rules, scrutinee, exp.line, "case")
        return result

    def _elab_andalso(self, exp: ast.AndalsoExp) -> Type:
        unify(self.elab_exp(exp.left), prim.bool_type(), exp.line)
        unify(self.elab_exp(exp.right), prim.bool_type(), exp.line)
        return prim.bool_type()

    def _elab_orelse(self, exp: ast.OrelseExp) -> Type:
        unify(self.elab_exp(exp.left), prim.bool_type(), exp.line)
        unify(self.elab_exp(exp.right), prim.bool_type(), exp.line)
        return prim.bool_type()

    def _elab_while(self, exp: ast.WhileExp) -> Type:
        unify(self.elab_exp(exp.cond), prim.bool_type(), exp.line)
        self.elab_exp(exp.body)
        return unit_type()

    def _elab_raise(self, exp: ast.RaiseExp) -> Type:
        unify(self.elab_exp(exp.exn), prim.exn_type(), exp.line)
        return self.fresh_tyvar()

    def _elab_handle(self, exp: ast.HandleExp) -> Type:
        body_ty = self.elab_exp(exp.body)
        for pat, rhs in exp.rules:
            bindings: dict[str, Type] = {}
            unify(self.elab_pat(pat, bindings), prim.exn_type(), exp.line)
            self.push_frame()
            for name, ty in bindings.items():
                self.env.bind_value(name, ValueBinding(ty))
            unify(self.elab_exp(rhs), body_ty, exp.line)
            self.pop_frame()
        self.check_rules(exp.rules, prim.exn_type(), exp.line, "handle")
        return body_ty

    def _elab_typed(self, exp: ast.TypedExp) -> Type:
        ty = self.elab_exp(exp.exp)
        unify(ty, self.elab_ty(exp.ty), exp.line)
        return ty

    # -- generalization -------------------------------------------------------

    def generalize(self, ty: Type, expansive: bool, line: int = 0) -> Type:
        """Quantify variables above the current level (value restriction:
        expansive expressions stay monomorphic).  Unresolved overloaded
        operator variables default (to int, usually) at this point."""
        _resolve_overloads(ty)
        if expansive:
            return ty
        mapping: dict[int, BoundVar] = {}
        eqflags: list[bool] = []

        def walk(t: Type) -> Type:
            t = prune(t)
            if isinstance(t, TyVar):
                if t.level > self.level:
                    if t.id not in mapping:
                        mapping[t.id] = BoundVar(len(mapping))
                        eqflags.append(t.eq)
                    return mapping[t.id]
                return t
            if isinstance(t, FlexRecord):
                if t.level > self.level:
                    self.error(
                        "unresolved flexible record type (add a type "
                        "annotation)", line)
                return t
            if isinstance(t, ConType):
                return ConType(t.tycon, tuple(walk(a) for a in t.args))
            if isinstance(t, RecordType):
                return RecordType(
                    tuple((label, walk(f)) for label, f in t.fields))
            if isinstance(t, FunType):
                return FunType(walk(t.dom), walk(t.rng))
            return t

        body = walk(ty)
        if not mapping:
            return ty
        return PolyType(len(mapping), body, tuple(eqflags))

    # -- core declarations ----------------------------------------------------

    def elab_dec(self, dec: ast.Dec) -> None:
        """Elaborate a declaration, binding its names in the current
        frame."""
        method = _DEC_DISPATCH.get(type(dec))
        if method is None:
            # Module-level declarations are handled by elab.modules, which
            # extends this dispatch table at import time.
            raise AssertionError(f"unknown declaration {dec!r}")
        method(self, dec)

    def _elab_val_dec(self, dec: ast.ValDec) -> None:
        self.push_tyvars(dec.tyvars, flexible=True)
        results: list[tuple[dict[str, Type], bool, int]] = []
        for pat, exp in dec.bindings:
            self.level += 1
            exp_ty = self.elab_exp(exp)
            bindings: dict[str, Type] = {}
            pat_ty = self.elab_pat(pat, bindings)
            unify(pat_ty, exp_ty, dec.line)
            self.level -= 1
            self.check_rules([(pat, None)], pat_ty, dec.line, "val")
            results.append((bindings, _is_expansive(exp), dec.line))
        self.pop_tyvars()
        for bindings, expansive, line in results:
            for name, ty in bindings.items():
                scheme = self.generalize(ty, expansive, line)
                self.env.bind_value(name, ValueBinding(scheme))

    def _elab_val_rec_dec(self, dec: ast.ValRecDec) -> None:
        self.push_tyvars(dec.tyvars, flexible=True)
        self.level += 1
        self.push_frame()
        pre: dict[str, TyVar] = {}
        for name, _fn in dec.bindings:
            var = self.fresh_tyvar()
            pre[name] = var
            self.env.bind_value(name, ValueBinding(var))
        for name, fn in dec.bindings:
            unify(self.elab_exp(fn), pre[name], dec.line)
        self.pop_frame()
        self.level -= 1
        self.pop_tyvars()
        for name, _fn in dec.bindings:
            scheme = self.generalize(pre[name], False, dec.line)
            self.env.bind_value(name, ValueBinding(scheme))

    def _elab_fun_dec(self, dec: ast.FunDec) -> None:
        self.push_tyvars(dec.tyvars, flexible=True)
        self.level += 1
        self.push_frame()
        pre: dict[str, TyVar] = {}
        for clauses in dec.functions:
            name = clauses[0].name
            var = self.fresh_tyvar()
            pre[name] = var
            self.env.bind_value(name, ValueBinding(var))
        for clauses in dec.functions:
            self._elab_clauses(clauses, pre[clauses[0].name])
        self.pop_frame()
        self.level -= 1
        self.pop_tyvars()
        for clauses in dec.functions:
            name = clauses[0].name
            scheme = self.generalize(pre[name], False, dec.line)
            self.env.bind_value(name, ValueBinding(scheme))

    def _elab_clauses(self, clauses: list[ast.FunClause], fn_ty: Type) -> None:
        arity = len(clauses[0].pats)
        clause_arg_types: list[list[Type]] = []
        for clause in clauses:
            if len(clause.pats) != arity:
                self.error(
                    f"clauses of {clause.name} differ in argument count",
                    clause.line)
            bindings: dict[str, Type] = {}
            arg_tys = [self.elab_pat(p, bindings) for p in clause.pats]
            clause_arg_types.append(arg_tys)
            self.push_frame()
            for name, ty in bindings.items():
                self.env.bind_value(name, ValueBinding(ty))
            body_ty = self.elab_exp(clause.body)
            if clause.result_ty is not None:
                unify(body_ty, self.elab_ty(clause.result_ty), clause.line)
            self.pop_frame()
            clause_ty: Type = body_ty
            for arg in reversed(arg_tys):
                clause_ty = FunType(arg, clause_ty)
            unify(fn_ty, clause_ty, clause.line)
        from repro.elab.matchcheck import check_clauses

        check_clauses(clauses, clause_arg_types[0], clauses[0].line,
                      self.warn)

    def _elab_type_dec(self, dec: ast.TypeDec) -> None:
        for tyvars, name, ty in dec.bindings:
            self.env.bind_tycon(name, self._elab_typefun(tyvars, name, ty))

    def _elab_typefun(self, tyvars: list[str], name: str,
                      ty: ast.Ty) -> TypeFun:
        scope = self.push_tyvars([], flexible=False)
        for i, tv in enumerate(tyvars):
            scope.table[tv] = BoundVar(i)
        body = self.elab_ty(ty)
        self.pop_tyvars()
        return TypeFun(len(tyvars), body, name)

    def _elab_datatype_dec(self, dec: ast.DatatypeDec) -> None:
        self.elab_datatype_bindings(dec.bindings, dec.withtypes)

    def elab_datatype_bindings(
        self,
        bindings: list[tuple[list[str], str, list[ast.ConBind]]],
        withtypes: list[tuple[list[str], str, ast.Ty]] = (),
    ) -> tuple[list[DatatypeTycon], list[Constructor]]:
        """Elaborate a (possibly recursive) bundle of datatype bindings;
        used by both declarations and signature specs."""
        tycons: list[DatatypeTycon] = []
        for tyvars, name, _cons in bindings:
            tycon = DatatypeTycon(self.fresh_stamp(), name, len(tyvars))
            tycons.append(tycon)
            self.env.bind_tycon(name, tycon)
        for tyvars, name, ty in withtypes:
            self.env.bind_tycon(name, self._elab_typefun(tyvars, name, ty))
        all_cons: list[Constructor] = []
        for tycon, (tyvars, _name, conbinds) in zip(tycons, bindings):
            scope = self.push_tyvars([], flexible=False)
            for i, tv in enumerate(tyvars):
                scope.table[tv] = BoundVar(i)
            result = ConType(
                tycon, tuple(BoundVar(i) for i in range(len(tyvars))))
            seen: set[str] = set()
            for conbind in conbinds:
                if conbind.name in seen:
                    self.error(
                        f"duplicate constructor {conbind.name}", conbind.line)
                seen.add(conbind.name)
                if conbind.arg_ty is None:
                    body: Type = result
                    has_arg = False
                else:
                    body = FunType(self.elab_ty(conbind.arg_ty), result)
                    has_arg = True
                scheme: Type = body
                if tycon.arity:
                    scheme = PolyType(tycon.arity, body)
                con = Constructor(conbind.name, tycon, scheme, has_arg)
                tycon.constructors.append(con)
                all_cons.append(con)
                self.env.bind_value(conbind.name, ValueBinding(scheme, con))
            self.pop_tyvars()
        compute_datatype_equality(tycons)
        return tycons, all_cons

    def _elab_datatype_repl_dec(self, dec: ast.DatatypeReplDec) -> None:
        tycon = self.env.lookup_tycon_path(dec.path)
        if not isinstance(tycon, DatatypeTycon):
            self.error(
                f"{ast.path_str(dec.path)} is not a datatype", dec.line)
        self.env.bind_tycon(dec.name, tycon)
        for con in tycon.constructors:
            self.env.bind_value(con.name, ValueBinding(con.scheme, con))

    def _elab_abstype_dec(self, dec: ast.AbstypeDec) -> None:
        self.push_frame()
        tycons, _cons = self.elab_datatype_bindings(dec.bindings)
        inner = self.push_frame()
        for d in dec.body:
            self.elab_dec(d)
        self.pop_frame()
        self.pop_frame()
        # Export the type (without constructors) and the body's bindings.
        for tycon in tycons:
            self.env.bind_tycon(tycon.name, tycon)
        self.env.absorb(inner)

    def _elab_exception_dec(self, dec: ast.ExceptionDec) -> None:
        for name, arg_ty, alias in dec.bindings:
            if alias is not None:
                binding = self.env.lookup_value_path(alias)
                if (binding is None or binding.con is None
                        or not binding.con.is_exn):
                    self.error(
                        f"{ast.path_str(alias)} is not an exception",
                        dec.line)
                self.env.bind_value(name, binding)
                continue
            if arg_ty is None:
                scheme: Type = prim.exn_type()
                has_arg = False
            else:
                arg = self.elab_ty(arg_ty)
                if _free_tyvars(arg):
                    self.error(
                        "exception type must be monomorphic", dec.line)
                scheme = FunType(arg, prim.exn_type())
                has_arg = True
            con = Constructor(name, None, scheme, has_arg, is_exn=True)
            self.env.bind_value(name, ValueBinding(scheme, con))

    def _elab_local_dec(self, dec: ast.LocalDec) -> None:
        self.push_frame()
        for d in dec.private:
            self.elab_dec(d)
        public = self.push_frame()
        for d in dec.public:
            self.elab_dec(d)
        self.pop_frame()
        self.pop_frame()
        self.env.absorb(public)

    def _elab_open_dec(self, dec: ast.OpenDec) -> None:
        for path in dec.paths:
            struct = self.env.lookup_structure_path(path)
            if struct is None:
                self.error(f"unbound structure {ast.path_str(path)}",
                           dec.line)
            self.env.absorb(struct.env)

    def _elab_fixity_dec(self, dec: ast.FixityDec) -> None:
        pass  # fixity is a purely syntactic matter, handled by the parser


def _resolve_overloads(ty: Type) -> None:
    """Link every unresolved OverloadVar in ``ty`` to its default type
    (respecting an equality constraint if one was imposed)."""
    from repro.semant.types import OverloadVar

    ty = prune(ty)
    if isinstance(ty, OverloadVar):
        default = ty.default
        if ty.eq and not default.admits_equality():
            for cand in ty.candidates:
                if cand.admits_equality():
                    default = cand
                    break
        ty.link = ConType(default)
    elif isinstance(ty, ConType):
        for a in ty.args:
            _resolve_overloads(a)
    elif isinstance(ty, RecordType):
        for _, f in ty.fields:
            _resolve_overloads(f)
    elif isinstance(ty, FlexRecord):
        for f in ty.fields.values():
            _resolve_overloads(f)
    elif isinstance(ty, FunType):
        _resolve_overloads(ty.dom)
        _resolve_overloads(ty.rng)


def _const_type(kind: str) -> Type:
    return {
        "int": prim.int_type(),
        "word": prim.word_type(),
        "string": prim.string_type(),
        "char": prim.char_type(),
    }[kind]


def _is_expansive(exp: ast.Exp) -> bool:
    """The value restriction's syntactic-value test (inverted)."""
    if isinstance(exp, (ast.IntExp, ast.WordExp, ast.RealExp, ast.StringExp,
                        ast.CharExp, ast.VarExp, ast.FnExp,
                        ast.SelectorExp)):
        return False
    if isinstance(exp, ast.TupleExp):
        return any(_is_expansive(e) for e in exp.parts)
    if isinstance(exp, ast.RecordExp):
        return any(_is_expansive(e) for _, e in exp.fields)
    if isinstance(exp, ast.ListExp):
        return any(_is_expansive(e) for e in exp.parts)
    if isinstance(exp, ast.TypedExp):
        return _is_expansive(exp.exp)
    if isinstance(exp, ast.AppExp):
        # A constructor application to a value is a value -- except ref.
        fn = exp.fn
        if isinstance(fn, ast.VarExp) and isinstance(fn.info, ast.ConInfo):
            if fn.path[-1] != "ref":
                return _is_expansive(exp.arg)
        return True
    return True


def _free_tyvars(ty: Type) -> list[TyVar]:
    out: list[TyVar] = []

    def walk(t: Type) -> None:
        t = prune(t)
        if isinstance(t, TyVar):
            if t not in out:
                out.append(t)
        elif isinstance(t, ConType):
            for a in t.args:
                walk(a)
        elif isinstance(t, RecordType):
            for _, f in t.fields:
                walk(f)
        elif isinstance(t, FlexRecord):
            for f in t.fields.values():
                walk(f)
        elif isinstance(t, FunType):
            walk(t.dom)
            walk(t.rng)

    walk(ty)
    return out


_EXP_DISPATCH = {
    ast.IntExp: Elaborator._elab_int,
    ast.WordExp: Elaborator._elab_word,
    ast.RealExp: Elaborator._elab_real,
    ast.StringExp: Elaborator._elab_string,
    ast.CharExp: Elaborator._elab_char,
    ast.VarExp: Elaborator._elab_var,
    ast.SelectorExp: Elaborator._elab_selector,
    ast.TupleExp: Elaborator._elab_tuple,
    ast.RecordExp: Elaborator._elab_record,
    ast.ListExp: Elaborator._elab_list,
    ast.SeqExp: Elaborator._elab_seq,
    ast.AppExp: Elaborator._elab_app,
    ast.FnExp: Elaborator._elab_fn,
    ast.LetExp: Elaborator._elab_let,
    ast.IfExp: Elaborator._elab_if,
    ast.CaseExp: Elaborator._elab_case,
    ast.AndalsoExp: Elaborator._elab_andalso,
    ast.OrelseExp: Elaborator._elab_orelse,
    ast.WhileExp: Elaborator._elab_while,
    ast.RaiseExp: Elaborator._elab_raise,
    ast.HandleExp: Elaborator._elab_handle,
    ast.TypedExp: Elaborator._elab_typed,
}

_DEC_DISPATCH = {
    ast.ValDec: Elaborator._elab_val_dec,
    ast.ValRecDec: Elaborator._elab_val_rec_dec,
    ast.FunDec: Elaborator._elab_fun_dec,
    ast.TypeDec: Elaborator._elab_type_dec,
    ast.DatatypeDec: Elaborator._elab_datatype_dec,
    ast.DatatypeReplDec: Elaborator._elab_datatype_repl_dec,
    ast.AbstypeDec: Elaborator._elab_abstype_dec,
    ast.ExceptionDec: Elaborator._elab_exception_dec,
    ast.LocalDec: Elaborator._elab_local_dec,
    ast.OpenDec: Elaborator._elab_open_dec,
    ast.FixityDec: Elaborator._elab_fixity_dec,
}


def register_dec_handler(node_class, handler) -> None:
    """Extension point used by :mod:`repro.elab.modules` to add the
    module-language declarations to the dispatch table."""
    _DEC_DISPATCH[node_class] = handler
