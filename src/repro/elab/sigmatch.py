"""Signature matching.

``match_structure`` checks an actual structure against an elaborated
signature and produces the constrained view:

- *transparent* (``S : SIG``): flexible tycons are realized to the
  actual's tycons, so type identities leak through to clients -- this is
  exactly the paper's Figure 1 behaviour (``FSort.t = int list`` is
  visible even though ``SORT`` only says ``type t``), and the reason SML
  has pervasive inter-implementation dependencies.
- *opaque* (``S :> SIG``): flexible tycons are realized to brand-new
  abstract tycons, hiding the implementation -- the paper's §10
  "alternatives" style that weakens dependencies.
"""

from __future__ import annotations

from repro.elab.errors import ElabError
from repro.elab.realize import (
    Realization,
    fresh_abstract_realization,
    realize_env,
    realize_type,
)
from repro.elab.unify import equal_types, unify
from repro.semant.env import Env, Sig, Structure
from repro.semant.types import (
    AbstractTycon,
    ConType,
    DatatypeTycon,
    PolyType,
    TypeFun,
    Type,
    instantiate,
    subst_bound,
)


def match_structure(el, actual: Structure, sig: Sig, opaque: bool,
                    line: int = 0) -> Structure:
    """Match ``actual`` against ``sig``; return the constrained structure.

    ``el`` is the :class:`repro.elab.core.Elaborator` (for fresh stamps).
    Raises :class:`ElabError` on any mismatch.
    """
    flex_ids = {stamp.id for stamp in sig.flex}
    rlz: Realization = {}
    _realize_tycons(actual.env, sig.env, flex_ids, rlz, sig.name, line)
    _check_specs(actual.env, sig.env, rlz, sig.name, line)
    if opaque:
        flex_tycons = _flex_tycons(sig)
        out_rlz = fresh_abstract_realization(flex_tycons, el.fresh_stamp)
        # Equality for opaque eqtype specs was verified against the actual
        # by _realize_tycons; the fresh abstract tycons carry the spec's
        # eq attribute already.
        result_env = realize_env(sig.env, out_rlz, el.fresh_stamp)
    else:
        result_env = realize_env(sig.env, rlz, el.fresh_stamp)
    return Structure(el.fresh_stamp(), actual.name, result_env)


def _flex_tycons(sig: Sig) -> list:
    """The flexible tycon objects of a signature, in spec order."""
    found: dict[int, object] = {}
    flex_ids = {stamp.id for stamp in sig.flex}

    def walk(env: Env) -> None:
        for tycon in env.tycons.values():
            stamp = getattr(tycon, "stamp", None)
            if stamp is not None and stamp.id in flex_ids:
                found.setdefault(stamp.id, tycon)
        for struct in env.structures.values():
            walk(struct.env)

    walk(sig.env)
    return list(found.values())


def _realize_tycons(actual: Env, formal: Env, flex_ids: set[int],
                    rlz: Realization, signame: str, line: int) -> None:
    """First pass: walk type specs (and substructures) building the
    realization of flexible tycons from the actual structure."""
    for name, ftycon in formal.tycons.items():
        atycon = actual.tycons.get(name)
        if atycon is None:
            raise ElabError(
                f"signature {signame}: type {name} is not present in the "
                f"structure", line, 0)
        f_arity = ftycon.arity
        a_arity = atycon.arity
        if f_arity != a_arity:
            raise ElabError(
                f"signature {signame}: type {name} has arity {a_arity}, "
                f"spec requires {f_arity}", line, 0)
        stamp = getattr(ftycon, "stamp", None)
        if stamp is not None and stamp.id in flex_ids:
            if stamp.id in rlz:
                if not _same_tycon_meaning(rlz[stamp.id], atycon):
                    raise ElabError(
                        f"signature {signame}: inconsistent realization of "
                        f"type {name} (sharing violated)", line, 0)
            else:
                rlz[stamp.id] = atycon
            if _spec_requires_equality(ftycon) and not _admits_eq(atycon):
                raise ElabError(
                    f"signature {signame}: eqtype {name} matched by a type "
                    f"that does not admit equality", line, 0)
    for name, fstruct in formal.structures.items():
        astruct = actual.structures.get(name)
        if astruct is None:
            raise ElabError(
                f"signature {signame}: structure {name} is not present",
                line, 0)
        _realize_tycons(astruct.env, fstruct.env, flex_ids, rlz, signame,
                        line)


def _check_specs(actual: Env, formal: Env, rlz: Realization, signame: str,
                 line: int) -> None:
    """Second pass: with the realization known, check definitional type
    specs, datatype specs, and value specs."""
    for name, ftycon in formal.tycons.items():
        atycon = actual.tycons[name]
        if isinstance(ftycon, TypeFun):
            if not _tycon_equals_fun(atycon, ftycon, rlz):
                raise ElabError(
                    f"signature {signame}: type {name} does not equal its "
                    f"spec definition", line, 0)
        elif isinstance(ftycon, DatatypeTycon):
            _check_datatype_spec(name, atycon, ftycon, rlz, signame, line)
    for name, fstruct in formal.structures.items():
        _check_specs(actual.structures[name].env, fstruct.env, rlz,
                     signame, line)
    for name, fval in formal.values.items():
        aval = actual.values.get(name)
        if aval is None:
            raise ElabError(
                f"signature {signame}: value {name} is not present in the "
                f"structure", line, 0)
        spec_scheme = realize_type(fval.scheme, rlz)
        if not scheme_matches(aval.scheme, spec_scheme):
            raise ElabError(
                f"signature {signame}: value {name} : {aval.scheme!r} does "
                f"not match spec {spec_scheme!r}", line, 0)
        if fval.con is not None:
            if aval.con is None:
                raise ElabError(
                    f"signature {signame}: {name} must be a constructor",
                    line, 0)
            if fval.con.is_exn and not aval.con.is_exn:
                raise ElabError(
                    f"signature {signame}: {name} must be an exception",
                    line, 0)


def _check_datatype_spec(name: str, atycon, ftycon: DatatypeTycon,
                         rlz: Realization, signame: str, line: int) -> None:
    if not isinstance(atycon, DatatypeTycon):
        raise ElabError(
            f"signature {signame}: {name} must be a datatype", line, 0)
    formal_cons = {c.name: c for c in ftycon.constructors}
    actual_cons = {c.name: c for c in atycon.constructors}
    if set(formal_cons) != set(actual_cons):
        raise ElabError(
            f"signature {signame}: datatype {name} constructors differ "
            f"({sorted(actual_cons)} vs spec {sorted(formal_cons)})",
            line, 0)
    for cname, fcon in formal_cons.items():
        acon = actual_cons[cname]
        if fcon.has_arg != acon.has_arg:
            raise ElabError(
                f"signature {signame}: constructor {cname} arity differs "
                f"from spec", line, 0)
        spec_scheme = realize_type(fcon.scheme, rlz)
        if not _schemes_equal(acon.scheme, spec_scheme):
            raise ElabError(
                f"signature {signame}: constructor {cname} type differs "
                f"from spec", line, 0)


def _same_tycon_meaning(first, second) -> bool:
    """Are two realizations of one flexible stamp the same type?"""
    if first is second:
        return True
    return _tycons_equal_as_funs(first, second)


def _tycons_equal_as_funs(first, second) -> bool:
    arity = first.arity
    if arity != second.arity:
        return False
    skolems = tuple(
        ConType(AbstractTycon(_skolem_stamp(), f"?s{i}", 0)) for i in
        range(arity))
    return equal_types(_apply_any(first, skolems), _apply_any(second, skolems))


def _tycon_equals_fun(actual, fun: TypeFun, rlz: Realization) -> bool:
    realized_body = realize_type(fun.body, rlz)
    skolems = tuple(
        ConType(AbstractTycon(_skolem_stamp(), f"?s{i}", 0)) for i in
        range(fun.arity))
    formal = subst_bound(realized_body, skolems)
    if actual.arity != fun.arity:
        return False
    return equal_types(_apply_any(actual, skolems), formal)


def _apply_any(tycon, args: tuple) -> Type:
    if isinstance(tycon, TypeFun):
        return subst_bound(tycon.body, args)
    return ConType(tycon, args)


_SKOLEM_COUNTER = [0]


def _skolem_stamp():
    from repro.semant.stamps import Stamp

    _SKOLEM_COUNTER[0] -= 1
    return Stamp(_SKOLEM_COUNTER[0])


def _spec_requires_equality(tycon) -> bool:
    return isinstance(tycon, AbstractTycon) and tycon.eq


def _admits_eq(tycon) -> bool:
    if isinstance(tycon, TypeFun):
        # A type function admits equality when its body does for eq args.
        from repro.semant.types import _admits_eq_structural

        return _admits_eq_structural(tycon.body)
    return tycon.admits_equality()


def scheme_matches(actual_scheme: Type, spec_scheme: Type) -> bool:
    """Is the actual scheme at least as general as the spec's?

    Instantiates the spec with skolem tycons and the actual with fresh
    unification variables, then unifies.
    """
    if isinstance(spec_scheme, PolyType):
        skolems = tuple(
            ConType(
                AbstractTycon(_skolem_stamp(), f"?v{i}", 0,
                              eq=spec_scheme.eqflags[i]))
            for i in range(spec_scheme.arity)
        )
        spec_body = subst_bound(spec_scheme.body, skolems)
    else:
        spec_body = spec_scheme
    actual_inst = instantiate(actual_scheme, level=1 << 30)
    try:
        unify(actual_inst, spec_body)
        return True
    except ElabError:
        return False


def _schemes_equal(actual: Type, spec: Type) -> bool:
    """Exact scheme equality (used for datatype constructor specs)."""
    a_poly = isinstance(actual, PolyType)
    s_poly = isinstance(spec, PolyType)
    if a_poly != s_poly:
        return False
    if a_poly:
        if actual.arity != spec.arity:
            return False
        skolems = tuple(
            ConType(AbstractTycon(_skolem_stamp(), f"?c{i}", 0))
            for i in range(actual.arity))
        return equal_types(subst_bound(actual.body, skolems),
                           subst_bound(spec.body, skolems))
    return equal_types(actual, spec)
