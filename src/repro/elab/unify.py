"""Unification for the Hindley-Milner core.

Uses mutable :class:`repro.semant.types.TyVar` links with Rémy-style
levels for efficient generalization, plus :class:`FlexRecord` constraints
for ``#label`` selectors and flexible record patterns.
"""

from __future__ import annotations

from repro.elab.errors import ElabError
from repro.semant.types import (
    BoundVar,
    ConType,
    FlexRecord,
    FunType,
    RecordType,
    TyVar,
    Type,
    force_equality,
    prune,
)


def unify(t1: Type, t2: Type, line: int = 0) -> None:
    """Make ``t1`` and ``t2`` equal, or raise :class:`ElabError`."""
    t1 = prune(t1)
    t2 = prune(t2)
    if t1 is t2:
        return

    if isinstance(t1, TyVar):
        _bind_var(t1, t2, line)
        return
    if isinstance(t2, TyVar):
        _bind_var(t2, t1, line)
        return

    if isinstance(t1, FlexRecord):
        _bind_flex(t1, t2, line)
        return
    if isinstance(t2, FlexRecord):
        _bind_flex(t2, t1, line)
        return

    if isinstance(t1, FunType) and isinstance(t2, FunType):
        unify(t1.dom, t2.dom, line)
        unify(t1.rng, t2.rng, line)
        return

    if isinstance(t1, RecordType) and isinstance(t2, RecordType):
        if t1.labels() != t2.labels():
            raise ElabError(
                f"record types differ: {t1!r} vs {t2!r}", line, 0
            )
        for (_, f1), (_, f2) in zip(t1.fields, t2.fields):
            unify(f1, f2, line)
        return

    if isinstance(t1, ConType) and isinstance(t2, ConType):
        if t1.tycon is not t2.tycon:
            raise ElabError(
                f"type constructors differ: {t1!r} vs {t2!r}", line, 0
            )
        for a1, a2 in zip(t1.args, t2.args):
            unify(a1, a2, line)
        return

    raise ElabError(f"cannot unify {t1!r} with {t2!r}", line, 0)


def _bind_var(var: TyVar, ty: Type, line: int) -> None:
    from repro.semant.types import OverloadVar

    if _occurs(var, ty):
        raise ElabError("circular type (occurs check)", line, 0)
    if isinstance(var, OverloadVar):
        _bind_overload(var, ty, line)
        return
    if isinstance(ty, OverloadVar):
        # Keep the more constrained variable as the representative.
        _adjust_levels(var, ty.level)
        var.link = ty
        return
    if var.eq and not force_equality(ty):
        raise ElabError(
            f"type {ty!r} does not admit equality", line, 0
        )
    _adjust_levels(ty, var.level)
    var.link = ty


def _bind_overload(var, ty: Type, line: int) -> None:
    from repro.semant.types import OverloadVar

    if isinstance(ty, OverloadVar):
        merged = tuple(t for t in var.candidates if t in ty.candidates)
        if not merged:
            raise ElabError("incompatible operator overloadings", line, 0)
        default = var.default if var.default in merged else merged[0]
        combined = OverloadVar(min(var.level, ty.level), merged, default)
        var.link = combined
        ty.link = combined
        return
    if isinstance(ty, TyVar):
        # Plain variable resolves to the overloaded one.
        _adjust_levels(var, ty.level)
        ty.link = var
        return
    if isinstance(ty, ConType) and ty.tycon in var.candidates:
        if var.eq and not force_equality(ty):
            raise ElabError(
                f"type {ty!r} does not admit equality", line, 0)
        var.link = ty
        return
    names = "/".join(t.name for t in var.candidates)
    raise ElabError(
        f"overloaded operator wants {names}, found {ty!r}", line, 0)


def _bind_flex(flex: FlexRecord, ty: Type, line: int) -> None:
    if isinstance(ty, RecordType):
        have = dict(ty.fields)
        for label, fty in flex.fields.items():
            if label not in have:
                raise ElabError(
                    f"record type {ty!r} lacks field #{label}", line, 0
                )
            unify(fty, have[label], line)
        _adjust_levels(ty, flex.level)
        flex.link = ty
        return
    if isinstance(ty, FlexRecord):
        merged = dict(flex.fields)
        for label, fty in ty.fields.items():
            if label in merged:
                unify(merged[label], fty, line)
            else:
                merged[label] = fty
        combined = FlexRecord(merged, min(flex.level, ty.level))
        flex.link = combined
        ty.link = combined
        return
    raise ElabError(
        f"expected a record type with fields "
        f"{sorted(flex.fields)}, found {ty!r}", line, 0
    )


def _occurs(var: TyVar, ty: Type) -> bool:
    ty = prune(ty)
    if ty is var:
        return True
    if isinstance(ty, ConType):
        return any(_occurs(var, a) for a in ty.args)
    if isinstance(ty, RecordType):
        return any(_occurs(var, t) for _, t in ty.fields)
    if isinstance(ty, FlexRecord):
        return any(_occurs(var, t) for t in ty.fields.values())
    if isinstance(ty, FunType):
        return _occurs(var, ty.dom) or _occurs(var, ty.rng)
    return False


def _adjust_levels(ty: Type, level: int) -> None:
    """Lower the levels of variables in ``ty`` to at most ``level``, so
    generalization never quantifies a variable that escaped into an outer
    scope."""
    ty = prune(ty)
    if isinstance(ty, TyVar):
        ty.level = min(ty.level, level)
    elif isinstance(ty, FlexRecord):
        ty.level = min(ty.level, level)
        for t in ty.fields.values():
            _adjust_levels(t, level)
    elif isinstance(ty, ConType):
        for a in ty.args:
            _adjust_levels(a, level)
    elif isinstance(ty, RecordType):
        for _, t in ty.fields:
            _adjust_levels(t, level)
    elif isinstance(ty, FunType):
        _adjust_levels(ty.dom, level)
        _adjust_levels(ty.rng, level)


def equal_types(t1: Type, t2: Type) -> bool:
    """Structural equality of two (pruned) types without unification.

    Used by signature matching to verify realization consistency; bound
    variables compare by index, tycons by identity.
    """
    t1 = prune(t1)
    t2 = prune(t2)
    if t1 is t2:
        return True
    if isinstance(t1, BoundVar) and isinstance(t2, BoundVar):
        return t1.index == t2.index
    if isinstance(t1, ConType) and isinstance(t2, ConType):
        return t1.tycon is t2.tycon and all(
            equal_types(a, b) for a, b in zip(t1.args, t2.args)
        )
    if isinstance(t1, RecordType) and isinstance(t2, RecordType):
        return t1.labels() == t2.labels() and all(
            equal_types(a, b)
            for (_, a), (_, b) in zip(t1.fields, t2.fields)
        )
    if isinstance(t1, FunType) and isinstance(t2, FunType):
        return equal_types(t1.dom, t2.dom) and equal_types(t1.rng, t2.rng)
    return False
