"""Module-language elaboration: structures, signatures, functors.

Functor semantics: the body is elaborated once at definition time against
a formal parameter instance (early error detection), and re-elaborated at
each application against the matched actual argument, which makes every
application generative (fresh stamps) exactly as the Definition demands.
"""

from __future__ import annotations

from repro.elab.core import Elaborator, register_dec_handler
from repro.elab.errors import ElabError
from repro.elab.realize import (
    Realization,
    fresh_abstract_realization,
    realize_env,
    realize_type,
)
from repro.elab.sigmatch import _flex_tycons, match_structure
from repro.lang import ast
from repro.semant.env import Env, Functor, Sig, Structure, ValueBinding
from repro.semant.types import (
    AbstractTycon,
    BoundVar,
    ConType,
    Constructor,
    DatatypeTycon,
    FunType,
    PolyType,
    RecordType,
    TyVar,
    TypeFun,
    Type,
    prune,
)

# ---------------------------------------------------------------------------
# Structure expressions
# ---------------------------------------------------------------------------


def elab_strexp(el: Elaborator, strexp: ast.StrExp,
                name_hint: str = "?") -> Structure:
    if isinstance(strexp, ast.StructStrExp):
        frame = el.push_frame()
        for dec in strexp.decs:
            el.elab_dec(dec)
        el.pop_frame()
        env = Env()
        env.absorb(frame)
        return Structure(el.fresh_stamp(), name_hint, env)
    if isinstance(strexp, ast.VarStrExp):
        struct = el.env.lookup_structure_path(strexp.path)
        if struct is None:
            el.error(f"unbound structure {ast.path_str(strexp.path)}",
                     strexp.line)
        return struct
    if isinstance(strexp, ast.AppStrExp):
        functor = _lookup_functor_path(el.env, strexp.functor_path)
        if functor is None:
            el.error(
                f"unbound functor {ast.path_str(strexp.functor_path)}",
                strexp.line)
        if functor.takes_functor():
            # Higher-order application: the argument is a functor name.
            if not isinstance(strexp.arg, ast.VarStrExp):
                el.error(
                    f"functor {ast.path_str(strexp.functor_path)} takes a "
                    f"functor argument", strexp.line)
            actual = _lookup_functor_path(el.env, strexp.arg.path)
            if actual is None:
                el.error(
                    f"unbound functor {ast.path_str(strexp.arg.path)}",
                    strexp.line)
            strexp.info = "functor"
            return apply_functor_to_functor(el, functor, actual,
                                            strexp.line, name_hint)
        arg = elab_strexp(el, strexp.arg, name_hint=f"{name_hint}$arg")
        return apply_functor(el, functor, arg, strexp.line,
                             name_hint=name_hint)
    if isinstance(strexp, ast.LetStrExp):
        el.push_frame()
        for dec in strexp.decs:
            el.elab_dec(dec)
        result = elab_strexp(el, strexp.body, name_hint)
        el.pop_frame()
        return result
    if isinstance(strexp, ast.ConstraintStrExp):
        body = elab_strexp(el, strexp.body, name_hint)
        sig = elab_sigexp(el, strexp.sig)
        return match_structure(el, body, sig, strexp.opaque, strexp.line)
    raise AssertionError(f"unknown structure expression {strexp!r}")


def _lookup_functor_path(env: Env, path: ast.Path):
    if len(path) == 1:
        return env.lookup_functor(path[0])
    struct = env.lookup_structure_path(path[:-1])
    if struct is None:
        return None
    return struct.env.functors.get(path[-1])


def apply_functor(el: Elaborator, functor: Functor, arg: Structure,
                  line: int, name_hint: str = "?") -> Structure:
    """Apply a functor: match the argument, re-elaborate the body.

    The result signature (if any) is kept as AST on the functor and
    elaborated here, with the matched parameter in scope -- this is what
    makes dependent result signatures work."""
    if functor.takes_functor():
        el.error(
            f"functor {functor.name} expects a functor argument, got a "
            f"structure", line)
    matched = match_structure(el, arg, functor.param_sig, opaque=False,
                              line=line)
    saved_env = el.env
    el.env = functor.def_env.child()
    el.env.bind_structure(functor.param_name, matched)
    try:
        if functor.is_formal():
            # A formal (abstract) functor from a higher-order parameter
            # spec: each application yields a fresh, generative instance
            # of the declared result signature (which may mention the
            # parameter we just bound).
            inst = elab_sigexp(el, functor.result_sig)
            return Structure(el.fresh_stamp(), name_hint, inst.env)
        result = elab_strexp(el, functor.body, name_hint)
        if functor.result_sig is not None:
            result_sig = elab_sigexp(el, functor.result_sig)
            result = match_structure(el, result, result_sig,
                                     functor.opaque, line)
    finally:
        el.env = saved_env
    return result


def apply_functor_to_functor(el: Elaborator, functor: Functor,
                             actual: Functor, line: int,
                             name_hint: str = "?") -> Structure:
    """Apply a higher-order functor to a functor argument.

    The argument's conformance to the spec is checked *semantically*: the
    actual functor is applied to a formal instance of the spec's
    parameter signature, and its result must match the spec's result
    signature.  (With re-elaboration this is a real check, not an
    approximation.)
    """
    inner_name, inner_sig_ast, inner_result_ast = functor.fct_param
    saved_env = el.env
    el.env = functor.def_env.child()
    try:
        inner_sig = elab_sigexp(el, inner_sig_ast)
        formal_arg = Structure(el.fresh_stamp(), inner_name, inner_sig.env)
        trial = apply_functor(el, actual, formal_arg, line)
        el.env.bind_structure(inner_name, formal_arg)
        spec_result = elab_sigexp(el, inner_result_ast)
        match_structure(el, trial, spec_result, opaque=False, line=line)
    finally:
        el.env = saved_env

    saved_env = el.env
    el.env = functor.def_env.child()
    el.env.bind_functor(functor.param_name, actual)
    try:
        result = elab_strexp(el, functor.body, name_hint)
        if functor.result_sig is not None:
            result_sig = elab_sigexp(el, functor.result_sig)
            result = match_structure(el, result, result_sig,
                                     functor.opaque, line)
    finally:
        el.env = saved_env
    return result


# ---------------------------------------------------------------------------
# Signature expressions
# ---------------------------------------------------------------------------


def elab_sigexp(el: Elaborator, sigexp: ast.SigExp,
                name_hint: str = "?") -> Sig:
    if isinstance(sigexp, ast.SigSigExp):
        frame = el.push_frame()
        flex: list = []
        for spec in sigexp.specs:
            _elab_spec(el, spec, flex)
        el.pop_frame()
        env = Env()
        env.absorb(frame)
        return Sig(el.fresh_stamp(), name_hint, env, flex)
    if isinstance(sigexp, ast.VarSigExp):
        sig = el.env.lookup_signature(sigexp.name)
        if sig is None:
            el.error(f"unbound signature {sigexp.name}", sigexp.line)
        # Each *use* of a named signature is a fresh instance; otherwise
        # two structures specified with the same signature would share
        # their flexible tycons (implicit, unwanted sharing).
        return copy_sig_fresh(el, sig)
    if isinstance(sigexp, ast.WhereTypeSigExp):
        return _elab_where_type(el, sigexp, name_hint)
    raise AssertionError(f"unknown signature expression {sigexp!r}")


def copy_sig_fresh(el: Elaborator, sig: Sig) -> Sig:
    """A fresh instance of a signature: flexible stamps renamed."""
    if not sig.flex:
        return sig
    rlz = fresh_abstract_realization(_flex_tycons(sig), el.fresh_stamp)
    env = realize_env(sig.env, rlz, el.fresh_stamp)
    flex = [tycon.stamp for tycon in rlz.values()
            if isinstance(tycon, (AbstractTycon, DatatypeTycon))]
    for stamp in flex:
        el.new_stamps.add(stamp.id)
    return Sig(el.fresh_stamp(), sig.name, env, flex)


def _elab_where_type(el: Elaborator, sigexp: ast.WhereTypeSigExp,
                     name_hint: str) -> Sig:
    base = elab_sigexp(el, sigexp.base, name_hint)
    target = _lookup_sig_tycon(base.env, sigexp.path)
    if target is None:
        el.error(
            f"where type: {ast.path_str(sigexp.path)} is not specified in "
            f"the signature", sigexp.line)
    stamp = getattr(target, "stamp", None)
    if stamp is None or not any(stamp is s for s in base.flex):
        el.error(
            f"where type: {ast.path_str(sigexp.path)} is not a flexible "
            f"type in the signature", sigexp.line)
    definition = el._elab_typefun(sigexp.tyvars, sigexp.path[-1], sigexp.ty)
    if definition.arity != target.arity:
        el.error("where type: arity mismatch", sigexp.line)
    rlz: Realization = {stamp.id: definition}
    env = realize_env(base.env, rlz, el.fresh_stamp)
    flex = [s for s in base.flex if s is not stamp]
    return Sig(el.fresh_stamp(), base.name, env, flex)


def _lookup_sig_tycon(env: Env, path: ast.Path):
    node = env
    for name in path[:-1]:
        struct = node.structures.get(name)
        if struct is None:
            return None
        node = struct.env
    return node.tycons.get(path[-1])


# ---------------------------------------------------------------------------
# Specifications
# ---------------------------------------------------------------------------


def _elab_spec(el: Elaborator, spec: ast.Spec, flex: list) -> None:
    if isinstance(spec, ast.ValSpec):
        for name, ty in spec.bindings:
            el.env.bind_value(name,
                              ValueBinding(_elab_spec_type(el, ty)))
        return
    if isinstance(spec, ast.TypeSpec):
        for tyvars, name, definition in spec.bindings:
            if definition is not None:
                el.env.bind_tycon(
                    name, el._elab_typefun(tyvars, name, definition))
            else:
                tycon = AbstractTycon(el.fresh_stamp(), name, len(tyvars),
                                      eq=spec.equality)
                flex.append(tycon.stamp)
                el.env.bind_tycon(name, tycon)
        return
    if isinstance(spec, ast.DatatypeSpec):
        tycons, _cons = el.elab_datatype_bindings(spec.bindings)
        for tycon in tycons:
            flex.append(tycon.stamp)
        return
    if isinstance(spec, ast.ExceptionSpec):
        for name, arg_ty in spec.bindings:
            from repro.semant import prim

            if arg_ty is None:
                scheme: Type = prim.exn_type()
                has_arg = False
            else:
                scheme = FunType(el.elab_ty(arg_ty), prim.exn_type())
                has_arg = True
            con = Constructor(name, None, scheme, has_arg, is_exn=True)
            el.env.bind_value(name, ValueBinding(scheme, con))
        return
    if isinstance(spec, ast.StructureSpec):
        for name, sigexp in spec.bindings:
            sub = elab_sigexp(el, sigexp, name_hint=name)
            struct = Structure(el.fresh_stamp(), name, sub.env)
            el.env.bind_structure(name, struct)
            flex.extend(sub.flex)
        return
    if isinstance(spec, ast.IncludeSpec):
        sub = elab_sigexp(el, spec.sig)
        el.env.absorb(sub.env)
        flex.extend(sub.flex)
        return
    if isinstance(spec, ast.SharingSpec):
        _elab_sharing(el, spec, flex)
        return
    raise AssertionError(f"unknown spec {spec!r}")


def _elab_spec_type(el: Elaborator, ty: ast.Ty) -> Type:
    """Elaborate a val-spec type, implicitly quantifying its free type
    variables (per the Definition)."""
    scope = el.push_tyvars([], flexible=True)
    body = el.elab_ty(ty)
    el.pop_tyvars()
    if not scope.table:
        return body
    mapping: dict[int, BoundVar] = {}
    eqflags: list[bool] = []
    for var in scope.table.values():
        var = prune(var)
        assert isinstance(var, TyVar)
        mapping[var.id] = BoundVar(len(mapping))
        eqflags.append(var.eq)

    def walk(t: Type) -> Type:
        t = prune(t)
        if isinstance(t, TyVar):
            return mapping.get(t.id, t)
        if isinstance(t, ConType):
            return ConType(t.tycon, tuple(walk(a) for a in t.args))
        if isinstance(t, RecordType):
            return RecordType(
                tuple((label, walk(f)) for label, f in t.fields))
        if isinstance(t, FunType):
            return FunType(walk(t.dom), walk(t.rng))
        return t

    return PolyType(len(mapping), walk(body), tuple(eqflags))


def _elab_sharing(el: Elaborator, spec: ast.SharingSpec, flex: list) -> None:
    """``sharing type p1 = p2 = ...``: merge the named flexible tycons
    into one, rewriting the signature frame under construction."""
    tycons = []
    for path in spec.paths:
        tycon = _lookup_sig_tycon_chain(el.env, path)
        if tycon is None:
            el.error(
                f"sharing: unbound type {ast.path_str(path)}", spec.line)
        stamp = getattr(tycon, "stamp", None)
        if stamp is None or not any(stamp is s for s in flex):
            el.error(
                f"sharing: {ast.path_str(path)} is not a flexible type of "
                f"this signature", spec.line)
        tycons.append(tycon)
    canonical = tycons[0]
    rlz: Realization = {}
    for other in tycons[1:]:
        if other is canonical:
            continue
        if other.arity != canonical.arity:
            el.error("sharing: arity mismatch", spec.line)
        if isinstance(other, DatatypeTycon) or isinstance(
                canonical, DatatypeTycon):
            el.error(
                "sharing between datatype specs is not supported; share "
                "the abstract types instead", spec.line)
        if other.eq and not canonical.eq:
            canonical.eq = True
        rlz[other.stamp.id] = canonical
        flex[:] = [s for s in flex if s is not other.stamp]
    if rlz:
        _rewrite_frame_in_place(el.env, rlz, el.fresh_stamp)


def _lookup_sig_tycon_chain(env: Env, path: ast.Path):
    """Lookup a tycon path in the signature frame currently being built
    (falling back to outer scopes for the head)."""
    if len(path) == 1:
        return env.lookup_tycon(path[0])
    struct = env.lookup_structure(path[0])
    for name in path[1:-1]:
        if struct is None:
            return None
        struct = struct.env.structures.get(name)
    if struct is None:
        return None
    return struct.env.tycons.get(path[-1])


def _rewrite_frame_in_place(frame: Env, rlz: Realization,
                            fresh_stamp) -> None:
    """Apply a realization to the (private, under-construction) signature
    frame, mutating its tables."""
    for name, tycon in list(frame.tycons.items()):
        stamp = getattr(tycon, "stamp", None)
        if stamp is not None and stamp.id in rlz:
            frame.tycons[name] = rlz[stamp.id]
        elif isinstance(tycon, TypeFun):
            frame.tycons[name] = TypeFun(
                tycon.arity, realize_type(tycon.body, rlz), tycon.name)
    for name, vb in list(frame.values.items()):
        from repro.elab.realize import _realize_value_binding

        frame.values[name] = _realize_value_binding(vb, rlz)
    for name, struct in list(frame.structures.items()):
        _rewrite_frame_in_place(struct.env, rlz, fresh_stamp)


# ---------------------------------------------------------------------------
# Module-level declarations
# ---------------------------------------------------------------------------


def _elab_structure_dec(el: Elaborator, dec: ast.StructureDec) -> None:
    for binding in dec.bindings:
        struct = elab_strexp(el, binding.body, name_hint=binding.name)
        if binding.sig is not None:
            sig = elab_sigexp(el, binding.sig)
            struct = match_structure(el, struct, sig, binding.opaque,
                                     binding.line)
        struct = Structure(struct.stamp, binding.name, struct.env)
        el.env.bind_structure(binding.name, struct)


def _elab_signature_dec(el: Elaborator, dec: ast.SignatureDec) -> None:
    for name, sigexp in dec.bindings:
        sig = elab_sigexp(el, sigexp, name_hint=name)
        sig = Sig(sig.stamp, name, sig.env, sig.flex)
        el.env.bind_signature(name, sig)


def _elab_functor_dec(el: Elaborator, dec: ast.FunctorDec) -> None:
    for binding in dec.bindings:
        fct_param = None
        param_sig = None
        if binding.fct_param is not None:
            spec = binding.fct_param
            # Stored as AST; elaborated per use (the result part may
            # mention the inner parameter).
            fct_param = (spec.inner_param, spec.param_sig, spec.result_sig)
        else:
            param_sig = elab_sigexp(el, binding.param_sig,
                                    name_hint=binding.param_name)
        # The result signature stays AST, elaborated at each application
        # with the parameter in scope (dependent signatures).
        result_sig = binding.result_sig
        # The functor closes over a *trimmed* environment containing only
        # the names its body (and signatures) mention.  This is what lets
        # dehydration represent the closure's imported entities as
        # (pid, index) stubs instead of pickling the entire compilation
        # context -- and therefore what makes a functor's intrinsic pid
        # reflect exactly the external interfaces it depends on.
        closure_env = _trim_closure_env(el.env, binding)
        functor = Functor(
            el.fresh_stamp(), binding.name, binding.param_name, param_sig,
            result_sig, binding.opaque, binding.body, closure_env,
            fct_param=fct_param)
        _check_functor_definition(el, functor, binding.line)
        el.env.bind_functor(binding.name, functor)


def _trim_closure_env(env: Env, binding: ast.FctBind) -> Env:
    from repro.lang.freevars import mentioned_names

    mentions = mentioned_names(
        [binding.body, binding.param_sig, binding.result_sig,
         binding.fct_param])
    closure = Env()
    for name in sorted(mentions.values):
        vb = env.lookup_value(name)
        if vb is not None:
            closure.bind_value(name, vb)
    for name in sorted(mentions.tycons):
        tycon = env.lookup_tycon(name)
        if tycon is not None:
            closure.bind_tycon(name, tycon)
    for name in sorted(mentions.structures):
        struct = env.lookup_structure(name)
        if struct is not None:
            closure.bind_structure(name, struct)
    for name in sorted(mentions.signatures):
        sig = env.lookup_signature(name)
        if sig is not None:
            closure.bind_signature(name, sig)
    for name in sorted(mentions.functors):
        functor = env.lookup_functor(name)
        if functor is not None and name != binding.name:
            closure.bind_functor(name, functor)
    return closure


def _check_functor_definition(el: Elaborator, functor: Functor,
                              line: int) -> None:
    """Definition-time checking: elaborate the body against a formal
    parameter instance, verify the result signature, discard the result.

    For a higher-order functor, the formal parameter is an *abstract*
    functor (body None) whose applications yield fresh instances of the
    spec's result signature."""
    saved_env = el.env
    el.env = functor.def_env.child()
    try:
        if functor.takes_functor():
            inner_name, inner_sig_ast, inner_result_ast = functor.fct_param
            inner_sig = elab_sigexp(el, inner_sig_ast)
            formal = Functor(el.fresh_stamp(), functor.param_name,
                             inner_name, inner_sig, inner_result_ast,
                             False, None, el.env)
            el.env.bind_functor(functor.param_name, formal)
        else:
            formal_param = Structure(el.fresh_stamp(), functor.param_name,
                                     functor.param_sig.env)
            el.env.bind_structure(functor.param_name, formal_param)
        trial = elab_strexp(el, functor.body, name_hint=functor.name)
        if functor.result_sig is not None:
            result_sig = elab_sigexp(el, functor.result_sig)
            match_structure(el, trial, result_sig, functor.opaque, line)
    finally:
        el.env = saved_env


register_dec_handler(ast.StructureDec, _elab_structure_dec)
register_dec_handler(ast.SignatureDec, _elab_signature_dec)
register_dec_handler(ast.FunctorDec, _elab_functor_dec)
