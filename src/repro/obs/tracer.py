"""A zero-dependency span/event tracer for build telemetry.

One :class:`Tracer` instance observes one build (or CLI run).  It
implements the :class:`~repro.obs.meter.BuildMeter` protocol:

- **Spans** are nested timed regions.  Nesting is tracked per thread
  (each worker thread of a thread-pool build gets its own stack and its
  own *track*), so concurrent builds trace correctly.
- **Events** are instants; **counters** accumulate named totals and
  keep a sample timeline.
- ``complete_span`` lands a region timed elsewhere -- a process-pool
  worker measures its own compile and the parent records it on the
  worker's track.

The clock is injectable (default :func:`time.perf_counter`), so tests
drive it deterministically; traces from a fake clock are byte-stable.

Exports:

- :meth:`Tracer.render_tree`: a human span tree with durations, args
  and counter totals.
- :meth:`Tracer.to_chrome_trace`: the Chrome ``trace_event`` JSON
  object format (``{"traceEvents": [...]}`` plus metadata keys),
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed region: ``[start, end]`` in the tracer's clock."""

    name: str
    cat: str = "build"
    start: float = 0.0
    end: float = 0.0
    track: str = "main"
    args: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class Event:
    """An instant: something that happened, with no duration."""

    name: str
    cat: str
    at: float
    track: str
    args: dict = field(default_factory=dict)


class _SpanHandle:
    """Context manager for one live span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def set(self, **args) -> "_SpanHandle":
        """Attach results computed inside the span."""
        self.span.args.update(args)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._tracer._enter(self.span)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._exit(self.span)
        return False


class Tracer:
    """Collects spans, events and counters for one build.

    Thread-safe: span nesting is per-thread, the shared lists are
    guarded by a lock.  ``clock`` must be monotonic; inject a fake for
    deterministic tests.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.origin: float = clock()
        self.roots: list[Span] = []
        self.events: list[Event] = []
        self.counters: dict[str, float] = {}
        #: (time, counter name, running total) samples, for "C" events.
        self.counter_samples: list[tuple[float, str, float]] = []
        self._main_ident = threading.get_ident()
        self._tracks: dict[int, str] = {self._main_ident: "main"}

    # -- clock and tracks -------------------------------------------------

    def now(self) -> float:
        return self._clock()

    def wall(self) -> float:
        """Seconds from tracer creation to now (or to the last recorded
        endpoint, whichever is later -- fake clocks may not advance)."""
        latest = self._clock()
        with self._lock:
            for span in self.roots:
                latest = max(latest, span.end)
        return latest - self.origin

    def _track_label(self) -> str:
        ident = threading.get_ident()
        label = self._tracks.get(ident)
        if label is None:
            with self._lock:
                label = self._tracks.setdefault(
                    ident, f"t{len(self._tracks)}")
        return label

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    # -- the BuildMeter protocol ------------------------------------------

    def span(self, name: str, cat: str = "build", **args) -> _SpanHandle:
        return _SpanHandle(
            self, Span(name=name, cat=cat, track=self._track_label(),
                       args=args))

    def _enter(self, span: Span) -> None:
        span.start = self._clock()
        self._stack().append(span)

    def _exit(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # unbalanced exit: drop up to this span, keep the trace sane
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    def event(self, name: str, cat: str = "build", **args) -> None:
        ev = Event(name=name, cat=cat, at=self._clock(),
                   track=self._track_label(), args=args)
        with self._lock:
            self.events.append(ev)

    def counter(self, name: str, value: float = 1) -> None:
        at = self._clock()
        with self._lock:
            total = self.counters.get(name, 0) + value
            self.counters[name] = total
            self.counter_samples.append((at, name, total))

    def complete_span(self, name: str, start: float, end: float,
                      cat: str = "build", track: str | None = None,
                      **args) -> None:
        span = Span(name=name, cat=cat, start=start, end=end,
                    track=track if track is not None
                    else self._track_label(), args=args)
        with self._lock:
            self.roots.append(span)

    # -- reports ----------------------------------------------------------

    def all_spans(self):
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from root.walk()

    def spans_named(self, name: str) -> list[Span]:
        """Every span called ``name``, in recording order (test/assert
        helper: 'the trace carries retry spans')."""
        return [s for s in self.all_spans() if s.name == name]

    def events_named(self, name: str) -> list[Event]:
        """Every instant event called ``name``."""
        with self._lock:
            return [e for e in self.events if e.name == name]

    def render_tree(self) -> str:
        """The human report: span tree per track, then counters."""
        with self._lock:
            roots = list(self.roots)
            counters = dict(self.counters)
        lines = [f"trace: {self.wall() * 1e3:.1f} ms wall, "
                 f"{sum(1 for _ in self.all_spans())} span(s)"]

        def fmt_args(args: dict) -> str:
            if not args:
                return ""
            inner = ", ".join(f"{k}={v}" for k, v in sorted(args.items()))
            return f"  [{inner}]"

        def emit(span: Span, depth: int) -> None:
            lines.append(
                f"  {'  ' * depth}{span.name:<{max(1, 24 - 2 * depth)}}"
                f" {span.duration * 1e3:9.2f} ms{fmt_args(span.args)}")
            for child in span.children:
                emit(child, depth + 1)

        by_track: dict[str, list[Span]] = {}
        for root in roots:
            by_track.setdefault(root.track, []).append(root)
        for track in sorted(by_track, key=lambda t: (t != "main", t)):
            if len(by_track) > 1:
                lines.append(f"-- track {track} --")
            for root in by_track[track]:
                emit(root, 0)
        if counters:
            lines.append("counters:")
            for name in sorted(counters):
                value = counters[name]
                shown = int(value) if value == int(value) else value
                lines.append(f"  {name} = {shown}")
        return "\n".join(lines)

    def to_chrome_trace(self, extra: dict | None = None) -> dict:
        """The Chrome ``trace_event`` object format.

        Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}``
        plus any ``extra`` metadata keys (the trace viewer ignores keys
        it does not know, so build reports ride along in the same
        file).  Timestamps are microseconds from tracer creation.
        """
        with self._lock:
            roots = list(self.roots)
            events = list(self.events)
            samples = list(self.counter_samples)

        track_ids: dict[str, int] = {"main": 0}

        def tid(track: str) -> int:
            if track not in track_ids:
                track_ids[track] = len(track_ids)
            return track_ids[track]

        def us(t: float) -> float:
            return round((t - self.origin) * 1e6, 3)

        out: list[dict] = []

        def emit(span: Span) -> None:
            out.append({
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": us(span.start),
                "dur": round(span.duration * 1e6, 3),
                "pid": 1,
                "tid": tid(span.track),
                "args": dict(span.args),
            })
            for child in span.children:
                emit(child)

        for root in roots:
            emit(root)
        for ev in events:
            out.append({
                "name": ev.name,
                "cat": ev.cat,
                "ph": "i",
                "s": "t",
                "ts": us(ev.at),
                "pid": 1,
                "tid": tid(ev.track),
                "args": dict(ev.args),
            })
        for at, name, total in samples:
            out.append({
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": us(at),
                "pid": 1,
                "tid": 0,
                "args": {"value": total},
            })
        for track, track_id in sorted(track_ids.items(),
                                      key=lambda kv: kv[1]):
            out.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": track_id,
                "args": {"name": track},
            })
        trace = {"traceEvents": out, "displayTimeUnit": "ms"}
        if extra:
            trace.update(extra)
        return trace
