"""The cutoff-explanation ledger: *why* each unit was (re)built.

The paper's payoff is work avoided -- a cutoff stops the recompilation
cascade when an imported intrinsic pid is unchanged -- so the ledger
makes every such decision auditable.  For each unit the builder records
one typed :class:`BuildDecision`:

- ``recompiled`` because of **source-changed**, **import-pid-changed**
  (naming the upstream unit and the old/new pids), **store-miss** (no
  bin record at all), **quarantined** (the record existed but was
  damaged or unreadable), or **policy** (the builder's own rule forced
  it even though source and pids were stable -- make's transitive
  cascade is the canonical example: each ``policy`` rebuild is exactly
  a rebuild cutoff would have skipped);
- ``reused`` because **all-import-pids-stable**, or -- smart builder
  only -- **used-bindings-stable** (an import's pid changed but none of
  the bindings this unit mentions did).

Decisions are computed *structurally* at decide time from the prior bin
record and the live import pids, never parsed out of reason strings, so
the soundness property holds by construction (and is re-checked by
``tests/property/test_ledger_sound.py``): a ``reused`` /
``all-import-pids-stable`` unit really has every import pid equal to
its prior record's, and every ``import-pid-changed`` names a pid that
really differs.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Everything a decision's ``cause`` may be.
RECOMPILE_CAUSES = ("source-changed", "import-pid-changed", "store-miss",
                    "quarantined", "policy")
REUSE_CAUSES = ("all-import-pids-stable", "used-bindings-stable")


@dataclass(frozen=True)
class PidChange:
    """One import whose pid differs from the prior bin record.

    ``kind`` is ``"changed"`` (same upstream unit, different pid),
    ``"new-import"`` (a dependency edge that did not exist when the bin
    was written) or ``"dropped-import"`` (an edge that no longer
    exists).
    """

    unit: str
    old_pid: str = ""
    new_pid: str = ""
    kind: str = "changed"

    def describe(self) -> str:
        if self.kind == "new-import":
            return f"{self.unit} (new import, pid {self.new_pid})"
        if self.kind == "dropped-import":
            return f"{self.unit} (import dropped, was pid {self.old_pid})"
        return f"{self.unit} (pid {self.old_pid} -> {self.new_pid})"

    def to_json(self) -> dict:
        return {"unit": self.unit, "kind": self.kind,
                "old_pid": self.old_pid, "new_pid": self.new_pid}


@dataclass
class BuildDecision:
    """The ledger entry for one unit in one build pass."""

    unit: str
    verdict: str  # "recompiled" | "reused"
    cause: str  # one of RECOMPILE_CAUSES or REUSE_CAUSES
    action: str  # "compiled" | "loaded" | "cached"
    detail: str = ""  # the builder's own reason string
    changes: tuple[PidChange, ...] = ()
    quarantine_kinds: tuple[str, ...] = ()
    #: (name, pid) pairs: what the prior bin record was compiled
    #: against, and what is live now -- the raw facts behind ``cause``.
    prior_imports: tuple[tuple[str, str], ...] = ()
    live_imports: tuple[tuple[str, str], ...] = ()

    def describe(self) -> str:
        bits = [f"{self.unit}: {self.verdict} ({self.cause})"]
        if self.changes:
            bits.append("changed imports: "
                        + "; ".join(c.describe() for c in self.changes))
        if self.quarantine_kinds:
            bits.append("damage: " + ", ".join(self.quarantine_kinds))
        if self.detail:
            bits.append(f"builder says: {self.detail}")
        return " -- ".join(bits)

    def to_json(self) -> dict:
        return {
            "unit": self.unit,
            "verdict": self.verdict,
            "cause": self.cause,
            "action": self.action,
            "detail": self.detail,
            "changes": [c.to_json() for c in self.changes],
            "quarantine_kinds": list(self.quarantine_kinds),
            "prior_imports": [list(p) for p in self.prior_imports],
            "live_imports": [list(p) for p in self.live_imports],
        }


def pid_changes(prior_imports, live_imports) -> tuple[PidChange, ...]:
    """The imports whose pids differ between a prior record and now."""
    prior = dict(prior_imports)
    live = dict(live_imports)
    changes: list[PidChange] = []
    for unit, old_pid in prior.items():
        if unit not in live:
            changes.append(PidChange(unit, old_pid=old_pid,
                                     kind="dropped-import"))
        elif live[unit] != old_pid:
            changes.append(PidChange(unit, old_pid=old_pid,
                                     new_pid=live[unit]))
    for unit, new_pid in live.items():
        if unit not in prior:
            changes.append(PidChange(unit, new_pid=new_pid,
                                     kind="new-import"))
    return tuple(changes)


def explain_decision(
    unit: str,
    action: str,
    reason: str = "",
    had_record: bool = True,
    prior_imports=(),
    live_imports=(),
    source_changed: bool | None = None,
    quarantine_kinds=(),
) -> BuildDecision:
    """Build the typed decision for one unit, structurally.

    ``action`` is the builder's verb (``"compiled"``, ``"loaded"``,
    ``"cached"``); ``source_changed`` is the make-level digest check
    (``None`` when the caller did not need to compute it);
    ``quarantine_kinds`` are the health-report kinds recorded for a
    record that was damaged away.
    """
    prior = tuple((n, p) for n, p in prior_imports)
    live = tuple((n, p) for n, p in live_imports)
    changes = pid_changes(prior, live) if had_record else ()
    quarantine = tuple(quarantine_kinds)

    if action in ("loaded", "cached"):
        cause = ("all-import-pids-stable" if not changes
                 else "used-bindings-stable")
        return BuildDecision(unit=unit, verdict="reused", cause=cause,
                             action=action, detail=reason,
                             changes=changes, prior_imports=prior,
                             live_imports=live)

    if not had_record:
        cause = "quarantined" if quarantine else "store-miss"
    elif source_changed:
        cause = "source-changed"
    elif changes:
        cause = "import-pid-changed"
    else:
        cause = "policy"
    return BuildDecision(unit=unit, verdict="recompiled", cause=cause,
                         action="compiled", detail=reason,
                         changes=changes, quarantine_kinds=quarantine,
                         prior_imports=prior, live_imports=live)


class ExplanationLedger:
    """All of one build pass's decisions, in build order."""

    def __init__(self):
        self.decisions: dict[str, BuildDecision] = {}

    def record(self, decision: BuildDecision) -> None:
        self.decisions[decision.unit] = decision

    def get(self, unit: str) -> BuildDecision | None:
        return self.decisions.get(unit)

    def __len__(self) -> int:
        return len(self.decisions)

    def __iter__(self):
        return iter(self.decisions.values())

    def recompiled(self) -> list[BuildDecision]:
        return [d for d in self if d.verdict == "recompiled"]

    def reused(self) -> list[BuildDecision]:
        return [d for d in self if d.verdict == "reused"]

    def cause_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for decision in self:
            counts[decision.cause] = counts.get(decision.cause, 0) + 1
        return dict(sorted(counts.items()))

    def render_text(self, unit: str | None = None) -> str:
        """The ``--explain`` report: every unit, or just one."""
        if unit is not None:
            decision = self.get(unit)
            if decision is None:
                return (f"{unit}: no decision recorded "
                        f"(not part of this build)")
            return decision.describe()
        lines = [f"build decisions ({len(self)} unit(s)):"]
        lines.extend(f"  {d.describe()}" for d in self)
        if self.decisions:
            counts = ", ".join(f"{cause}={n}"
                               for cause, n in self.cause_counts().items())
            lines.append(f"  causes: {counts}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "causes": self.cause_counts(),
            "units": {d.unit: d.to_json() for d in self},
        }
