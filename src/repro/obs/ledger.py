"""The cutoff-explanation ledger: *why* each unit was (re)built.

The paper's payoff is work avoided -- a cutoff stops the recompilation
cascade when an imported intrinsic pid is unchanged -- so the ledger
makes every such decision auditable.  For each unit the builder records
one typed :class:`BuildDecision`:

- ``recompiled`` because of **source-changed**, **import-pid-changed**
  (naming the upstream unit and the old/new pids), **store-miss** (no
  bin record at all), **quarantined** (the record existed but was
  damaged or unreadable), or **policy** (the builder's own rule forced
  it even though source and pids were stable -- make's transitive
  cascade is the canonical example: each ``policy`` rebuild is exactly
  a rebuild cutoff would have skipped);
- ``reused`` because **all-import-pids-stable**, or -- smart builder
  only -- **used-bindings-stable** (an import's pid changed but none of
  the bindings this unit mentions did).

Decisions are computed *structurally* at decide time from the prior bin
record and the live import pids, never parsed out of reason strings, so
the soundness property holds by construction (and is re-checked by
``tests/property/test_ledger_sound.py``): a ``reused`` /
``all-import-pids-stable`` unit really has every import pid equal to
its prior record's, and every ``import-pid-changed`` names a pid that
really differs.

When the bin records carry interface slices (per-binding pids and
per-import used-binding sets), each decision also gets a
:class:`BindingCheck` per used binding of a pid-changed import: the
binding's pid when this unit was last compiled vs the provider's
current one.  That is the *evidence* behind ``used-bindings-stable``
(every check stable) and the per-binding culprit report behind
``import-pid-changed`` recompiles -- ``--explain <unit>`` prints the
actual stable/changed binding names.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Everything a decision's ``cause`` may be.
RECOMPILE_CAUSES = ("source-changed", "import-pid-changed", "store-miss",
                    "quarantined", "policy")
REUSE_CAUSES = ("all-import-pids-stable", "used-bindings-stable")
#: Supervised-build skip causes: ``failed-after-retries`` (the unit
#: itself exhausted its retry budget -- a *poison* unit) and
#: ``poison-import`` (a transitive import was poisoned, so this unit
#: could not be attempted at all).
SKIP_CAUSES = ("failed-after-retries", "poison-import")


@dataclass(frozen=True)
class PidChange:
    """One import whose pid differs from the prior bin record.

    ``kind`` is ``"changed"`` (same upstream unit, different pid),
    ``"new-import"`` (a dependency edge that did not exist when the bin
    was written) or ``"dropped-import"`` (an edge that no longer
    exists).
    """

    unit: str
    old_pid: str = ""
    new_pid: str = ""
    kind: str = "changed"

    def describe(self) -> str:
        if self.kind == "new-import":
            return f"{self.unit} (new import, pid {self.new_pid})"
        if self.kind == "dropped-import":
            return f"{self.unit} (import dropped, was pid {self.old_pid})"
        return f"{self.unit} (pid {self.old_pid} -> {self.new_pid})"

    def to_json(self) -> dict:
        return {"unit": self.unit, "kind": self.kind,
                "old_pid": self.old_pid, "new_pid": self.new_pid}


@dataclass(frozen=True)
class BindingCheck:
    """One used binding of a pid-changed import, checked at slice
    granularity.

    ``binding`` is the ``"ns:name"`` key; ``old_pid`` is the binding's
    pid recorded when this unit was compiled, ``new_pid`` the
    provider's current one.  An empty pid on either side means slice
    data was missing (a pre-slicing record), in which case the check is
    inconclusive and the builder must fall back to whole-pid cutoff.
    """

    provider: str
    binding: str
    old_pid: str = ""
    new_pid: str = ""

    @property
    def conclusive(self) -> bool:
        return bool(self.old_pid) and bool(self.new_pid)

    @property
    def stable(self) -> bool:
        return self.conclusive and self.old_pid == self.new_pid

    def describe(self) -> str:
        ns, _, name = self.binding.partition(":")
        label = f"{self.provider}.{name} ({ns.rstrip('s')})"
        if not self.conclusive:
            return f"{label} no slice data"
        if self.stable:
            return f"{label} stable"
        return f"{label} changed (pid {self.old_pid} -> {self.new_pid})"

    def to_json(self) -> dict:
        return {"provider": self.provider, "binding": self.binding,
                "old_pid": self.old_pid, "new_pid": self.new_pid,
                "stable": self.stable}


@dataclass
class BuildDecision:
    """The ledger entry for one unit in one build pass."""

    unit: str
    verdict: str  # "recompiled" | "reused" | "failed" | "skipped"
    cause: str  # one of RECOMPILE_CAUSES, REUSE_CAUSES or SKIP_CAUSES
    action: str  # "compiled" | "loaded" | "cached" | "skipped"
    detail: str = ""  # the builder's own reason string
    changes: tuple[PidChange, ...] = ()
    quarantine_kinds: tuple[str, ...] = ()
    #: (name, pid) pairs: what the prior bin record was compiled
    #: against, and what is live now -- the raw facts behind ``cause``.
    prior_imports: tuple[tuple[str, str], ...] = ()
    live_imports: tuple[tuple[str, str], ...] = ()
    #: Slice-level evidence: one check per used binding of each
    #: pid-changed import (empty when no import pid changed or the
    #: records carry no slice data).
    binding_checks: tuple[BindingCheck, ...] = ()
    #: For supervised-build skips (``poison-import``): the poisoned
    #: upstream unit whose failure cascaded here.
    culprit: str = ""

    def stable_bindings(self) -> tuple[BindingCheck, ...]:
        return tuple(c for c in self.binding_checks if c.stable)

    def changed_bindings(self) -> tuple[BindingCheck, ...]:
        return tuple(c for c in self.binding_checks
                     if c.conclusive and not c.stable)

    def describe(self) -> str:
        bits = [f"{self.unit}: {self.verdict} ({self.cause})"]
        if self.culprit:
            bits.append(f"poisoned import: {self.culprit}")
        if self.changes:
            bits.append("changed imports: "
                        + "; ".join(c.describe() for c in self.changes))
        if self.binding_checks:
            bits.append("used bindings: "
                        + "; ".join(c.describe()
                                    for c in self.binding_checks))
        if self.quarantine_kinds:
            bits.append("damage: " + ", ".join(self.quarantine_kinds))
        if self.detail:
            bits.append(f"builder says: {self.detail}")
        return " -- ".join(bits)

    def to_json(self) -> dict:
        return {
            "unit": self.unit,
            "verdict": self.verdict,
            "cause": self.cause,
            "action": self.action,
            "detail": self.detail,
            "changes": [c.to_json() for c in self.changes],
            "binding_checks": [c.to_json() for c in self.binding_checks],
            "quarantine_kinds": list(self.quarantine_kinds),
            "prior_imports": [list(p) for p in self.prior_imports],
            "live_imports": [list(p) for p in self.live_imports],
            "culprit": self.culprit,
        }


def pid_changes(prior_imports, live_imports) -> tuple[PidChange, ...]:
    """The imports whose pids differ between a prior record and now."""
    prior = dict(prior_imports)
    live = dict(live_imports)
    changes: list[PidChange] = []
    for unit, old_pid in prior.items():
        if unit not in live:
            changes.append(PidChange(unit, old_pid=old_pid,
                                     kind="dropped-import"))
        elif live[unit] != old_pid:
            changes.append(PidChange(unit, old_pid=old_pid,
                                     new_pid=live[unit]))
    for unit, new_pid in live.items():
        if unit not in prior:
            changes.append(PidChange(unit, new_pid=new_pid,
                                     kind="new-import"))
    return tuple(changes)


def binding_checks_for(changes, used_bindings,
                       live_binding_pids) -> tuple[BindingCheck, ...]:
    """The slice-level evidence for a decision: for every pid-changed
    import, one :class:`BindingCheck` per binding this unit used of it.

    ``used_bindings`` is the prior record's provider -> {key: pid} map;
    ``live_binding_pids`` maps each provider to its *current* binding
    pids (from the provider's up-to-date bin record).  Imports whose
    whole pid is stable need no checks: none of their bindings moved.
    """
    checks: list[BindingCheck] = []
    for change in changes:
        if change.kind != "changed":
            continue
        used = used_bindings.get(change.unit)
        if not used:
            continue  # no slice data recorded for this import
        live = live_binding_pids.get(change.unit, {})
        for key in sorted(used):
            checks.append(BindingCheck(
                provider=change.unit, binding=key,
                old_pid=used[key], new_pid=live.get(key, "")))
    return tuple(checks)


def explain_decision(
    unit: str,
    action: str,
    reason: str = "",
    had_record: bool = True,
    prior_imports=(),
    live_imports=(),
    source_changed: bool | None = None,
    quarantine_kinds=(),
    used_bindings=None,
    live_binding_pids=None,
) -> BuildDecision:
    """Build the typed decision for one unit, structurally.

    ``action`` is the builder's verb (``"compiled"``, ``"loaded"``,
    ``"cached"``); ``source_changed`` is the make-level digest check
    (``None`` when the caller did not need to compute it);
    ``quarantine_kinds`` are the health-report kinds recorded for a
    record that was damaged away.  ``used_bindings`` (the prior
    record's slice data) and ``live_binding_pids`` (current per-import
    binding pids) turn pid changes into per-binding
    :class:`BindingCheck` evidence.
    """
    prior = tuple((n, p) for n, p in prior_imports)
    live = tuple((n, p) for n, p in live_imports)
    changes = pid_changes(prior, live) if had_record else ()
    quarantine = tuple(quarantine_kinds)
    checks = binding_checks_for(changes, used_bindings or {},
                                live_binding_pids or {})

    if action in ("loaded", "cached"):
        cause = ("all-import-pids-stable" if not changes
                 else "used-bindings-stable")
        return BuildDecision(unit=unit, verdict="reused", cause=cause,
                             action=action, detail=reason,
                             changes=changes, prior_imports=prior,
                             live_imports=live, binding_checks=checks)

    if not had_record:
        cause = "quarantined" if quarantine else "store-miss"
    elif source_changed:
        cause = "source-changed"
    elif changes:
        cause = "import-pid-changed"
    else:
        cause = "policy"
    return BuildDecision(unit=unit, verdict="recompiled", cause=cause,
                         action="compiled", detail=reason,
                         changes=changes, quarantine_kinds=quarantine,
                         prior_imports=prior, live_imports=live,
                         binding_checks=checks)


def explain_skip(unit: str, cause: str, detail: str = "",
                 culprit: str = "") -> BuildDecision:
    """The decision for a unit a *supervised* build could not build.

    ``cause`` is one of :data:`SKIP_CAUSES`; ``culprit`` names the
    poisoned upstream unit for ``poison-import`` skips (so
    ``--explain`` says exactly which failure cascaded here).
    """
    if cause not in SKIP_CAUSES:
        raise ValueError(f"unknown skip cause {cause!r}")
    verdict = "failed" if cause == "failed-after-retries" else "skipped"
    return BuildDecision(unit=unit, verdict=verdict, cause=cause,
                         action="skipped", detail=detail,
                         culprit=culprit)


class ExplanationLedger:
    """All of one build pass's decisions, in build order."""

    def __init__(self):
        self.decisions: dict[str, BuildDecision] = {}

    def record(self, decision: BuildDecision) -> None:
        self.decisions[decision.unit] = decision

    def get(self, unit: str) -> BuildDecision | None:
        return self.decisions.get(unit)

    def __len__(self) -> int:
        return len(self.decisions)

    def __iter__(self):
        return iter(self.decisions.values())

    def recompiled(self) -> list[BuildDecision]:
        return [d for d in self if d.verdict == "recompiled"]

    def reused(self) -> list[BuildDecision]:
        return [d for d in self if d.verdict == "reused"]

    def skipped(self) -> list[BuildDecision]:
        """Supervised-build casualties: poisoned units and the
        dependents their failure cascaded to."""
        return [d for d in self if d.verdict in ("failed", "skipped")]

    def cause_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for decision in self:
            counts[decision.cause] = counts.get(decision.cause, 0) + 1
        return dict(sorted(counts.items()))

    def render_text(self, unit: str | None = None) -> str:
        """The ``--explain`` report: every unit, or just one."""
        if unit is not None:
            decision = self.get(unit)
            if decision is None:
                return (f"{unit}: no decision recorded "
                        f"(not part of this build)")
            return decision.describe()
        lines = [f"build decisions ({len(self)} unit(s)):"]
        lines.extend(f"  {d.describe()}" for d in self)
        if self.decisions:
            counts = ", ".join(f"{cause}={n}"
                               for cause, n in self.cause_counts().items())
            lines.append(f"  causes: {counts}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "causes": self.cause_counts(),
            "units": {d.unit: d.to_json() for d in self},
        }
