"""Build observability: tracing, explanation ledgers, profiling.

The build pipeline is instrumented through a single seam, the
:class:`~repro.obs.meter.BuildMeter` protocol.  Every instrumented call
site talks to a meter; the default :data:`~repro.obs.meter.NULL_METER`
does nothing (and costs almost nothing -- see
``benchmarks/test_bench_trace_overhead.py``), while a
:class:`~repro.obs.tracer.Tracer` records nested spans, instant events
and counters, renders a human tree report, and exports Chrome
``trace_event`` JSON loadable in ``chrome://tracing`` / Perfetto.

Orthogonally to timing, every builder keeps a **cutoff-explanation
ledger** (:class:`~repro.obs.ledger.ExplanationLedger`): one typed
:class:`~repro.obs.ledger.BuildDecision` per unit saying whether it was
recompiled or reused and *why* -- source edit, a named import pid that
changed (and which upstream unit changed it), a store miss, quarantined
damage, or pure builder policy (make's transitive cascade).

Post-build analytics live in :mod:`repro.obs.critical`: critical-path
extraction over the dependency DAG (the chain that bounds parallel
wall-clock), per-phase rollups and worker occupancy.

Across builds, :mod:`repro.obs.history` persists a compact
:class:`~repro.obs.history.BuildProfile` per build (a ring buffer
under ``.bin/profiles/``), :mod:`repro.obs.diff` structurally compares
the current ledger against the prior profile (``--explain-diff``:
"why did this unit rebuild today but not yesterday"),
:mod:`repro.obs.export` serializes spans to OTLP/JSON with zero new
dependencies, and :mod:`repro.obs.sampling` keeps full spans for
1-in-N builds with cheap always-on counters for the rest.
"""

from repro.obs.meter import NULL_METER, BuildMeter, NullMeter, NullSpan
from repro.obs.tracer import Span, Tracer
from repro.obs.ledger import (
    BuildDecision,
    ExplanationLedger,
    PidChange,
    explain_decision,
)
from repro.obs.critical import (
    critical_path,
    phase_rollup,
    request_rollup,
    span_coverage,
    worker_idle,
    worker_occupancy,
)
from repro.obs.history import (
    BuildHistory,
    BuildProfile,
    UnitProfile,
    longest_first_key,
    profile_from_report,
)
from repro.obs.diff import ProfileDiff, UnitDiff, diff_against_profile
from repro.obs.export import to_otlp, validate_otlp
from repro.obs.sampling import CounterMeter, SamplingMeter

__all__ = [
    "BuildMeter",
    "NullMeter",
    "NullSpan",
    "NULL_METER",
    "Tracer",
    "Span",
    "BuildDecision",
    "PidChange",
    "ExplanationLedger",
    "explain_decision",
    "critical_path",
    "phase_rollup",
    "request_rollup",
    "span_coverage",
    "worker_idle",
    "worker_occupancy",
    "BuildHistory",
    "BuildProfile",
    "UnitProfile",
    "longest_first_key",
    "profile_from_report",
    "ProfileDiff",
    "UnitDiff",
    "diff_against_profile",
    "to_otlp",
    "validate_otlp",
    "CounterMeter",
    "SamplingMeter",
]
