"""Build history: compact per-build profiles, persisted and fed back.

PR 4's tracer and ledger observe *one* build and are gone when the
process exits.  This module gives every build a durable, compact
record -- a :class:`BuildProfile` -- and a :class:`BuildHistory` ring
buffer of them under ``<bin_dir>/profiles/``, so the *next* build can
act on what the last one measured:

- ``--explain-diff`` (:mod:`repro.obs.diff`) structurally compares
  today's :class:`~repro.obs.ledger.ExplanationLedger` against the
  prior profile: "why did this unit rebuild today but not yesterday".
- ``--priority longest-first`` (:func:`longest_first_key`) orders the
  ready set's offers by the prior profile's per-unit compile seconds
  (longest-processing-time-first, the classic list-scheduling
  heuristic), which raises worker occupancy on imbalanced graphs
  without changing a single store byte -- record bytes are intrinsic
  per unit, so dispatch order is observability, not semantics.

A profile captures what the report and ledger already knew at the end
of a build: per-unit wall seconds and actions, the typed decision
(verdict/cause/culprit/pid changes), export pids, the dispatch order,
and the build configuration (manager, schedule, jobs, pool).

Storage discipline mirrors the store's own crash-safety: every profile
is written atomically (tmp + rename) through an injectable filesystem
seam, IO is best-effort (a profile that cannot be written or read
costs history, never the build), and the ring keeps the newest
``keep`` profiles per directory.  The seam accepts any object shaped
like :class:`repro.cm.faults.FileSystem`; the local default here is
deliberately minimal so this module never imports ``repro.cm`` (the
compilation manager imports ``repro.obs``, not the other way around).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

#: Subdirectory of the bin store holding the ring buffer.
PROFILE_DIR = "profiles"
PROFILE_PREFIX = "BUILD_PROFILE-"
PROFILE_SUFFIX = ".json"
#: Atomic-write suffix, same discipline as the store's saves.
PROFILE_TMP_SUFFIX = ".tmp"
PROFILE_FORMAT = 1
#: How many profiles the ring keeps by default.
DEFAULT_KEEP = 16


class _LocalFS:
    """Minimal filesystem for profile IO (shape-compatible subset of
    the store's ``FileSystem`` seam)."""

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as f:
            return f.read()

    def write_bytes(self, path: str, data: bytes) -> None:
        with open(path, "wb") as f:
            f.write(data)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def isdir(self, path: str) -> bool:
        return os.path.isdir(path)

    def listdir(self, path: str) -> list[str]:
        return sorted(os.listdir(path))


_DEFAULT_FS = _LocalFS()


@dataclass
class UnitProfile:
    """One unit's slice of a build profile."""

    name: str
    action: str = ""  # compiled | loaded | cached | failed | skipped
    seconds: float = 0.0
    export_pid: str = ""
    verdict: str = ""
    cause: str = ""
    #: The headline upstream unit behind this decision: the first
    #: pid-changed import for ``import-pid-changed`` recompiles, the
    #: poisoned unit for ``poison-import`` skips, else empty.
    culprit: str = ""
    #: The decision's pid changes, as plain dicts
    #: (``{"unit", "kind", "old_pid", "new_pid"}``).
    changes: list = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "action": self.action,
            "seconds": round(self.seconds, 6),
            "export_pid": self.export_pid,
            "verdict": self.verdict,
            "cause": self.cause,
            "culprit": self.culprit,
            "changes": list(self.changes),
        }

    @classmethod
    def from_json(cls, data: dict) -> "UnitProfile":
        return cls(
            name=str(data.get("name", "")),
            action=str(data.get("action", "")),
            seconds=float(data.get("seconds", 0.0)),
            export_pid=str(data.get("export_pid", "")),
            verdict=str(data.get("verdict", "")),
            cause=str(data.get("cause", "")),
            culprit=str(data.get("culprit", "")),
            changes=list(data.get("changes", [])),
        )


@dataclass
class BuildProfile:
    """The durable record of one build pass."""

    seq: int = 0
    group: str = ""
    manager: str = ""
    schedule: str = "wavefront"
    jobs: int = 1
    pool: str = "serial"
    wall_seconds: float = 0.0
    dispatch_order: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    units: dict = field(default_factory=dict)  # name -> UnitProfile

    def unit(self, name: str) -> UnitProfile | None:
        return self.units.get(name)

    def compile_seconds(self) -> dict[str, float]:
        """Per-unit seconds for units this build actually compiled."""
        return {u.name: u.seconds for u in self.units.values()
                if u.action == "compiled"}

    def to_json(self) -> dict:
        return {
            "format": PROFILE_FORMAT,
            "schema": "build-profile/1",
            "seq": self.seq,
            "group": self.group,
            "manager": self.manager,
            "schedule": self.schedule,
            "jobs": self.jobs,
            "pool": self.pool,
            "wall_seconds": round(self.wall_seconds, 6),
            "dispatch_order": list(self.dispatch_order),
            "stats": dict(self.stats),
            "units": {name: u.to_json()
                      for name, u in sorted(self.units.items())},
        }

    @classmethod
    def from_json(cls, data: dict) -> "BuildProfile":
        if data.get("format") != PROFILE_FORMAT:
            raise ValueError(f"unknown profile format "
                             f"{data.get('format')!r}")
        units = {}
        for name, entry in data.get("units", {}).items():
            units[str(name)] = UnitProfile.from_json(dict(entry))
        return cls(
            seq=int(data.get("seq", 0)),
            group=str(data.get("group", "")),
            manager=str(data.get("manager", "")),
            schedule=str(data.get("schedule", "wavefront")),
            jobs=int(data.get("jobs", 1)),
            pool=str(data.get("pool", "serial")),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            dispatch_order=list(data.get("dispatch_order", [])),
            stats=dict(data.get("stats", {})),
            units=units,
        )


def _decision_culprit(decision) -> str:
    """The headline upstream unit behind a decision."""
    if decision.culprit:
        return decision.culprit
    for change in decision.changes:
        if change.kind == "changed":
            return change.unit
    for change in decision.changes:
        return change.unit
    return ""


def profile_from_report(report, ledger=None, export_pids=None,
                        group: str = "", manager: str = "",
                        seq: int = 0) -> BuildProfile:
    """Distill a finished build into its durable profile.

    ``ledger`` defaults to the report's own; ``export_pids`` maps unit
    name -> export pid (e.g. from the builder's live units or store).
    Per-unit seconds are the unit's full pipeline time
    (compile + hash/pickle overhead), the same number ``--stats``
    totals.
    """
    ledger = ledger if ledger is not None else report.ledger
    export_pids = export_pids or {}
    profile = BuildProfile(
        seq=seq, group=group, manager=manager,
        schedule=report.schedule, jobs=report.jobs, pool=report.pool,
        wall_seconds=report.wall_seconds,
        dispatch_order=list(report.dispatch_order),
        stats=report.stats(),
    )
    for outcome in report.outcomes:
        unit = UnitProfile(
            name=outcome.name,
            action=outcome.action,
            seconds=(outcome.times.compile_total()
                     + outcome.times.overhead_total()),
            export_pid=str(export_pids.get(outcome.name, "")),
        )
        decision = ledger.get(outcome.name) if ledger is not None else None
        if decision is not None:
            unit.verdict = decision.verdict
            unit.cause = decision.cause
            unit.culprit = _decision_culprit(decision)
            unit.changes = [c.to_json() for c in decision.changes]
        profile.units[outcome.name] = unit
    return profile


class BuildHistory:
    """The ring buffer of :class:`BuildProfile` files for one bin dir.

    Profiles live as ``profiles/BUILD_PROFILE-<seq>.json`` under the
    store directory; ``seq`` increases monotonically across builds and
    the newest ``keep`` files survive pruning.  All IO is best-effort:
    a torn or unreadable profile reads as absent, a failed write is
    reported as ``False`` and the build goes on.
    """

    def __init__(self, bin_dir: str, fs=None, keep: int = DEFAULT_KEEP):
        self.bin_dir = bin_dir
        self.directory = os.path.join(bin_dir, PROFILE_DIR)
        self.fs = fs if fs is not None else _DEFAULT_FS
        self.keep = max(1, keep)

    # -- the ring ---------------------------------------------------------

    def _entries(self) -> list[tuple[int, str]]:
        """``(seq, filename)`` pairs present on disk, oldest first."""
        try:
            names = self.fs.listdir(self.directory)
        except OSError:
            return []
        out: list[tuple[int, str]] = []
        for name in names:
            if not (name.startswith(PROFILE_PREFIX)
                    and name.endswith(PROFILE_SUFFIX)):
                continue
            stem = name[len(PROFILE_PREFIX):-len(PROFILE_SUFFIX)]
            try:
                out.append((int(stem), name))
            except ValueError:
                continue
        out.sort()
        return out

    def next_seq(self) -> int:
        entries = self._entries()
        return (entries[-1][0] + 1) if entries else 1

    def _path(self, seq: int) -> str:
        return os.path.join(self.directory,
                            f"{PROFILE_PREFIX}{seq}{PROFILE_SUFFIX}")

    def _read(self, filename: str) -> BuildProfile | None:
        path = os.path.join(self.directory, filename)
        try:
            data = json.loads(self.fs.read_bytes(path).decode("utf-8"))
            return BuildProfile.from_json(data)
        except Exception:
            return None  # torn/damaged/absent: history degrades, never raises

    def record(self, profile: BuildProfile) -> bool:
        """Persist ``profile`` (assigning the next seq when unset) and
        prune the ring.  Returns False when the write failed."""
        if profile.seq <= 0:
            profile.seq = self.next_seq()
        path = self._path(profile.seq)
        payload = json.dumps(profile.to_json(), indent=1,
                             sort_keys=True).encode("utf-8")
        try:
            self.fs.makedirs(self.directory)
            self.fs.write_bytes(path + PROFILE_TMP_SUFFIX, payload)
            self.fs.replace(path + PROFILE_TMP_SUFFIX, path)
        except OSError:
            return False
        self._prune()
        return True

    def _prune(self) -> None:
        entries = self._entries()
        for _seq, name in entries[:-self.keep]:
            try:
                self.fs.remove(os.path.join(self.directory, name))
            except OSError:
                pass

    # -- queries ----------------------------------------------------------

    def profiles(self, manager: str | None = None) -> list[BuildProfile]:
        """Readable profiles, oldest first, optionally filtered."""
        out = []
        for _seq, name in self._entries():
            profile = self._read(name)
            if profile is None:
                continue
            if manager is not None and profile.manager != manager:
                continue
            out.append(profile)
        return out

    def latest(self, manager: str | None = None) -> BuildProfile | None:
        """The newest readable profile (for ``manager`` if given)."""
        for _seq, name in reversed(self._entries()):
            profile = self._read(name)
            if profile is None:
                continue
            if manager is None or profile.manager == manager:
                return profile
        return None

    def compile_seconds(self, manager: str | None = None,
                        depth: int = 4) -> dict[str, float]:
        """Per-unit compile seconds merged across recent profiles,
        newest measurement winning.  ``depth`` bounds how far back the
        merge looks, so one incremental build (which compiles almost
        nothing) does not erase the timings a full build measured."""
        merged: dict[str, float] = {}
        recent = self.profiles(manager)[-depth:]
        for profile in recent:  # oldest first: newest overwrites
            merged.update(profile.compile_seconds())
        return merged


def longest_first_key(seconds: dict[str, float]):
    """A ready-set offer key: longest prior compile time first, name
    order breaking ties and ranking unknown units (which get the
    profile median, the neutral guess).  Returns None when there is no
    history at all -- the caller then keeps plain sorted-name order.
    """
    if not seconds:
        return None
    ordered = sorted(seconds.values())
    mid = len(ordered) // 2
    median = (ordered[mid] if len(ordered) % 2
              else (ordered[mid - 1] + ordered[mid]) / 2.0)

    def key(name: str):
        return (-seconds.get(name, median), name)

    return key
