"""OTLP/JSON export for build traces -- zero new dependencies.

The tracer's spans already carry everything the OpenTelemetry protocol
wants (name, category, timestamps, track, args); this module is purely
a serializer to the OTLP/JSON wire shape
(``opentelemetry.proto.trace.v1``, the ``resourceSpans`` ->
``scopeSpans`` -> ``spans`` nesting), so traces can land in any OTLP
collector (Jaeger, Tempo, Honeycomb, ...) without adding a single
package:

- **Resource attributes** identify the build: group, manager,
  schedule, jobs -- plus every tracer counter (``counter.<name>``),
  so rollup numbers ride with the trace.
- **Span tree** is preserved via ``parentSpanId``; each span carries
  its category and track as attributes plus whatever args the
  instrumentation attached.
- **Events** become OTLP span events on the nearest enclosing span of
  their track (instants with no enclosing span are emitted as
  zero-duration spans, so nothing is dropped).
- **Span links** connect a recompiled unit's span to its *culprit
  import's* span when the explanation ledger says the rebuild was
  ``import-pid-changed`` -- the trace states causality, not just
  timing.

Determinism: trace/span ids are sequential counters rendered as
fixed-width hex (OTLP requires 16/8 bytes of hex, not uniqueness
beyond the trace), and timestamps are nanoseconds from an injectable
epoch, so a fake-clock tracer exports byte-stable JSON.

:func:`validate_otlp` is the structural schema check the tests (and
any pre-flight) can run against an exported payload.
"""

from __future__ import annotations

#: int64s are JSON strings in OTLP (proto3 JSON mapping).
SPAN_KIND_INTERNAL = 1


def _attr_value(value) -> dict:
    """One OTLP ``AnyValue``."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    if isinstance(value, (list, tuple)):
        return {"arrayValue":
                {"values": [_attr_value(v) for v in value]}}
    return {"stringValue": str(value)}


def _attrs(mapping: dict) -> list[dict]:
    return [{"key": str(k), "value": _attr_value(v)}
            for k, v in mapping.items()]


def _trace_id(n: int) -> str:
    return format(n, "032x")


def _span_id(n: int) -> str:
    return format(n, "016x")


def to_otlp(tracer, resource: dict | None = None, ledger=None,
            base_unix_nano: int = 0) -> dict:
    """Serialize a tracer's spans/events to an OTLP/JSON payload.

    ``resource`` becomes the resource attributes (group, manager,
    schedule, jobs...); ``ledger`` (an
    :class:`~repro.obs.ledger.ExplanationLedger`) adds span links from
    each ``import-pid-changed`` recompile to the culprit import's
    span.  ``base_unix_nano`` anchors the tracer's relative clock to
    wall time (0 keeps timestamps relative -- still valid OTLP, and
    deterministic for tests).
    """
    with tracer._lock:
        roots = list(tracer.roots)
        events = list(tracer.events)
        counters = dict(tracer.counters)

    trace_id = _trace_id(1)
    next_id = [1]
    spans_out: list[dict] = []
    #: every (span dataclass, serialized dict) pair, for event/link
    #: attachment after the tree walk.
    emitted: list[tuple] = []

    def nanos(t: float) -> str:
        return str(base_unix_nano + int(round((t - tracer.origin) * 1e9)))

    def emit(span, parent_id: str) -> None:
        span_id = _span_id(next_id[0])
        next_id[0] += 1
        attrs = {"cat": span.cat, "track": span.track}
        attrs.update(span.args)
        out = {
            "traceId": trace_id,
            "spanId": span_id,
            "name": span.name,
            "kind": SPAN_KIND_INTERNAL,
            "startTimeUnixNano": nanos(span.start),
            "endTimeUnixNano": nanos(span.end),
            "attributes": _attrs(attrs),
        }
        if parent_id:
            out["parentSpanId"] = parent_id
        spans_out.append(out)
        emitted.append((span, out))
        for child in span.children:
            emit(child, span_id)

    for root in roots:
        emit(root, "")

    # -- events: attach to the tightest enclosing span on their track --
    for ev in events:
        best = None
        best_width = None
        for span, out in emitted:
            if span.track != ev.track:
                continue
            if span.start <= ev.at <= span.end:
                width = span.end - span.start
                if best_width is None or width < best_width:
                    best, best_width = out, width
        entry = {
            "timeUnixNano": nanos(ev.at),
            "name": ev.name,
            "attributes": _attrs({"cat": ev.cat, **ev.args}),
        }
        if best is not None:
            best.setdefault("events", []).append(entry)
        else:  # no enclosing span: keep the instant as a point span
            span_id = _span_id(next_id[0])
            next_id[0] += 1
            spans_out.append({
                "traceId": trace_id,
                "spanId": span_id,
                "name": ev.name,
                "kind": SPAN_KIND_INTERNAL,
                "startTimeUnixNano": entry["timeUnixNano"],
                "endTimeUnixNano": entry["timeUnixNano"],
                "attributes": _attrs({"cat": ev.cat,
                                      "track": ev.track, **ev.args}),
            })

    # -- links: recompiled unit -> culprit import's span ---------------
    if ledger is not None:
        by_unit: dict[str, dict] = {}
        for span, out in emitted:
            unit = span.args.get("unit")
            if unit and span.name in ("unit", "apply", "worker-compile") \
                    and unit not in by_unit:
                by_unit[unit] = out
        for decision in ledger:
            if decision.cause != "import-pid-changed":
                continue
            source = by_unit.get(decision.unit)
            if source is None:
                continue
            for change in decision.changes:
                target = by_unit.get(change.unit)
                if target is None:
                    continue
                source.setdefault("links", []).append({
                    "traceId": target["traceId"],
                    "spanId": target["spanId"],
                    "attributes": _attrs({
                        "relation": "culprit-import",
                        "kind": change.kind,
                        "old_pid": change.old_pid,
                        "new_pid": change.new_pid,
                    }),
                })

    resource_attrs = dict(resource or {})
    for name in sorted(counters):
        resource_attrs[f"counter.{name}"] = counters[name]

    return {
        "resourceSpans": [{
            "resource": {"attributes": _attrs(resource_attrs)},
            "scopeSpans": [{
                "scope": {"name": "repro.obs", "version": "1"},
                "spans": spans_out,
            }],
        }],
    }


# -- schema check ---------------------------------------------------------


def _check_attrs(attrs, where: str, problems: list[str]) -> None:
    if not isinstance(attrs, list):
        problems.append(f"{where}: attributes is not a list")
        return
    for attr in attrs:
        if not isinstance(attr, dict) or "key" not in attr \
                or "value" not in attr:
            problems.append(f"{where}: malformed attribute {attr!r}")
            continue
        value = attr["value"]
        kinds = {"stringValue", "intValue", "doubleValue", "boolValue",
                 "arrayValue"}
        if not isinstance(value, dict) or len(value) != 1 \
                or not kinds & set(value):
            problems.append(
                f"{where}: attribute {attr['key']!r} has no typed value")
        elif "intValue" in value \
                and not isinstance(value["intValue"], str):
            problems.append(
                f"{where}: intValue of {attr['key']!r} must be a "
                f"string (int64 JSON mapping)")


def _is_hex(text, width: int) -> bool:
    return (isinstance(text, str) and len(text) == width
            and all(c in "0123456789abcdef" for c in text))


def validate_otlp(payload: dict) -> list[str]:
    """Structurally validate an OTLP/JSON trace payload.

    Returns a list of problems (empty = valid): the shape checks an
    OTLP collector's JSON decoder would apply -- resourceSpans ->
    scopeSpans -> spans nesting, hex trace/span ids of the right
    width, int64 timestamps as digit strings, typed attributes.
    """
    problems: list[str] = []
    resource_spans = payload.get("resourceSpans")
    if not isinstance(resource_spans, list) or not resource_spans:
        return ["resourceSpans missing or empty"]
    span_ids: set[str] = set()
    for ri, rs in enumerate(resource_spans):
        where = f"resourceSpans[{ri}]"
        _check_attrs(rs.get("resource", {}).get("attributes", []),
                     f"{where}.resource", problems)
        scope_spans = rs.get("scopeSpans")
        if not isinstance(scope_spans, list):
            problems.append(f"{where}: scopeSpans missing")
            continue
        for si, ss in enumerate(scope_spans):
            spans = ss.get("spans")
            if not isinstance(spans, list):
                problems.append(f"{where}.scopeSpans[{si}]: spans "
                                f"missing")
                continue
            for span in spans:
                name = span.get("name", "<unnamed>")
                loc = f"span {name!r}"
                if not _is_hex(span.get("traceId"), 32):
                    problems.append(f"{loc}: bad traceId")
                if not _is_hex(span.get("spanId"), 16):
                    problems.append(f"{loc}: bad spanId")
                else:
                    span_ids.add(span["spanId"])
                parent = span.get("parentSpanId")
                if parent is not None and not _is_hex(parent, 16):
                    problems.append(f"{loc}: bad parentSpanId")
                for key in ("startTimeUnixNano", "endTimeUnixNano"):
                    t = span.get(key)
                    if not isinstance(t, str) or not \
                            (t.isdigit() or (t.startswith("-")
                                             and t[1:].isdigit())):
                        problems.append(f"{loc}: {key} must be a "
                                        f"digit string")
                _check_attrs(span.get("attributes", []), loc, problems)
                for ev in span.get("events", []):
                    if not isinstance(ev.get("timeUnixNano"), str):
                        problems.append(f"{loc}: event without "
                                        f"timeUnixNano")
                    _check_attrs(ev.get("attributes", []),
                                 f"{loc} event", problems)
                for link in span.get("links", []):
                    if not _is_hex(link.get("traceId"), 32):
                        problems.append(f"{loc}: link with bad traceId")
                    if not _is_hex(link.get("spanId"), 16):
                        problems.append(f"{loc}: link with bad spanId")
                    _check_attrs(link.get("attributes", []),
                                 f"{loc} link", problems)
    # Parent references must resolve within the payload.
    for rs in resource_spans:
        for ss in rs.get("scopeSpans", []):
            for span in ss.get("spans", []) \
                    if isinstance(ss.get("spans"), list) else []:
                parent = span.get("parentSpanId")
                if parent and parent not in span_ids:
                    problems.append(
                        f"span {span.get('name')!r}: dangling "
                        f"parentSpanId {parent}")
    return problems
