"""Cross-build decision diffing: why did this unit rebuild *today*?

One build's :class:`~repro.obs.ledger.ExplanationLedger` says why each
unit was recompiled or reused.  This module compares that against the
*prior* build's persisted :class:`~repro.obs.history.BuildProfile` and
answers the fleet question the single-build ledger cannot: "this unit
rebuilt today but not yesterday -- what changed between the runs?"

The diff is structural, never textual: verdicts, causes, culprit
imports and old/new pids are compared field by field, so the result is
a typed :class:`UnitDiff` per unit:

- ``unchanged`` -- same verdict and cause (and, for pid-driven
  recompiles, the same culprit import);
- ``decision-changed`` -- the verdict or cause moved (e.g. yesterday
  ``reused (all-import-pids-stable)``, today ``recompiled
  (source-changed)``);
- ``culprit-changed`` -- both builds recompiled for
  ``import-pid-changed``, but a *different* import's pid moved (old ->
  new pids shown for both);
- ``new-unit`` / ``dropped-unit`` -- the unit exists in only one of
  the builds.

``python -m repro.cm --explain-diff [unit]`` renders this; the daemon
answers an ``explain-diff`` request with the same text against its
warm prior profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.history import BuildProfile, UnitProfile, _decision_culprit


def _changes_text(changes) -> str:
    """Render a decision's pid changes compactly (dict or PidChange)."""
    bits = []
    for change in changes:
        if isinstance(change, dict):
            unit = change.get("unit", "")
            kind = change.get("kind", "changed")
            old, new = change.get("old_pid", ""), change.get("new_pid", "")
        else:
            unit, kind = change.unit, change.kind
            old, new = change.old_pid, change.new_pid
        if kind == "new-import":
            bits.append(f"{unit} (new import, pid {new})")
        elif kind == "dropped-import":
            bits.append(f"{unit} (import dropped, was pid {old})")
        else:
            bits.append(f"{unit} (pid {old} -> {new})")
    return "; ".join(bits)


@dataclass
class UnitDiff:
    """How one unit's decision moved between two builds."""

    unit: str
    kind: str  # unchanged | decision-changed | culprit-changed |
    #           new-unit | dropped-unit
    old_verdict: str = ""
    old_cause: str = ""
    old_culprit: str = ""
    old_changes: list = field(default_factory=list)
    new_verdict: str = ""
    new_cause: str = ""
    new_culprit: str = ""
    new_changes: list = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.kind != "unchanged"

    def describe(self) -> str:
        old = (f"{self.old_verdict} ({self.old_cause})"
               if self.old_verdict else "(absent)")
        new = (f"{self.new_verdict} ({self.new_cause})"
               if self.new_verdict else "(absent)")
        if self.kind == "unchanged":
            return f"{self.unit}: unchanged -- {new}"
        if self.kind == "new-unit":
            text = f"{self.unit}: new unit -- {new}"
            if self.new_changes:
                text += f" -- {_changes_text(self.new_changes)}"
            return text
        if self.kind == "dropped-unit":
            return f"{self.unit}: dropped unit -- was {old}"
        if self.kind == "culprit-changed":
            old_why = _changes_text(self.old_changes) or self.old_culprit
            new_why = _changes_text(self.new_changes) or self.new_culprit
            return (f"{self.unit}: culprit changed -- still {new} "
                    f"-- was via {old_why}; now via {new_why}")
        text = f"{self.unit}: decision changed -- {old} -> {new}"
        if self.new_changes:
            text += f" -- {_changes_text(self.new_changes)}"
        return text

    def to_json(self) -> dict:
        return {
            "unit": self.unit,
            "kind": self.kind,
            "old": {"verdict": self.old_verdict, "cause": self.old_cause,
                    "culprit": self.old_culprit,
                    "changes": list(self.old_changes)},
            "new": {"verdict": self.new_verdict, "cause": self.new_cause,
                    "culprit": self.new_culprit,
                    "changes": list(self.new_changes)},
        }


@dataclass
class ProfileDiff:
    """The whole-build diff: one :class:`UnitDiff` per unit seen by
    either build, plus the prior profile's identity (or None on a
    first build)."""

    prior: BuildProfile | None = None
    diffs: dict = field(default_factory=dict)  # unit -> UnitDiff

    def get(self, unit: str) -> UnitDiff | None:
        return self.diffs.get(unit)

    def changed(self) -> list[UnitDiff]:
        return [d for d in self.diffs.values() if d.changed]

    def render_text(self, unit: str | None = None) -> str:
        if self.prior is None:
            if unit is not None:
                return (f"{unit}: no prior build profile "
                        f"(first recorded build)")
            return ("explain-diff: no prior build profile "
                    "(first recorded build; decisions recorded for "
                    "next time)")
        header = (f"explain-diff vs build #{self.prior.seq}"
                  + (f" ({self.prior.manager})" if self.prior.manager
                     else ""))
        if unit is not None:
            diff = self.get(unit)
            if diff is None:
                return (f"{header}:\n  {unit}: no decision in either "
                        f"build")
            return f"{header}:\n  {diff.describe()}"
        lines = [f"{header}:"]
        lines.extend(f"  {d.describe()}"
                     for d in self.diffs.values())
        lines.append(f"  changed: {len(self.changed())} of "
                     f"{len(self.diffs)} unit(s)")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "prior_seq": self.prior.seq if self.prior else None,
            "units": {u: d.to_json()
                      for u, d in sorted(self.diffs.items())},
            "changed": sorted(d.unit for d in self.changed()),
        }


def _diff_unit(name: str, old: UnitProfile | None,
               decision) -> UnitDiff:
    diff = UnitDiff(unit=name, kind="unchanged")
    if old is not None:
        diff.old_verdict = old.verdict
        diff.old_cause = old.cause
        diff.old_culprit = old.culprit
        diff.old_changes = list(old.changes)
    if decision is not None:
        diff.new_verdict = decision.verdict
        diff.new_cause = decision.cause
        diff.new_culprit = _decision_culprit(decision)
        diff.new_changes = [c.to_json() for c in decision.changes]
    if old is None or not old.verdict:
        diff.kind = "new-unit"
    elif decision is None:
        diff.kind = "dropped-unit"
    elif (old.verdict != decision.verdict
          or old.cause != decision.cause):
        diff.kind = "decision-changed"
    elif (old.cause == "import-pid-changed"
          and diff.old_culprit != diff.new_culprit):
        diff.kind = "culprit-changed"
    return diff


def diff_against_profile(ledger,
                         profile: BuildProfile | None) -> ProfileDiff:
    """Structurally diff a live ledger against the prior profile.

    ``profile`` may be None (first recorded build): the result renders
    the no-history message and reports no per-unit diffs.
    """
    out = ProfileDiff(prior=profile)
    if profile is None:
        return out
    names = list(ledger.decisions)
    seen = set(names)
    names.extend(n for n in sorted(profile.units) if n not in seen)
    for name in names:
        out.diffs[name] = _diff_unit(name, profile.unit(name),
                                     ledger.get(name))
    return out
