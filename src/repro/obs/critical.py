"""Post-build analytics over traces and dependency DAGs.

- :func:`critical_path`: the dependency chain whose summed per-unit
  durations bound the wall-clock of an infinitely parallel build --
  the thing to shorten before adding workers helps.
- :func:`phase_rollup`: total seconds and call counts per span name.
- :func:`worker_occupancy`: busy seconds per track, for judging how
  well a wavefront schedule kept the pool fed.
- :func:`worker_idle`: the schedule-quality rollup -- worker-compile
  busy seconds vs ``jobs x build wall``, the number the ready-set
  scheduler exists to improve over wave barriers.
- :func:`request_rollup`: daemon request analytics from the
  ``daemon-request`` spans on the ``daemon`` track (count, coalesced
  joins, latency spread).
- :func:`span_coverage`: the fraction of a tracer's wall-clock covered
  by root spans -- the acceptance gate that tracing sees (almost)
  everything the build did.
"""

from __future__ import annotations


def critical_path(
    order: list[str],
    deps: dict[str, list[str]],
    durations: dict[str, float],
) -> tuple[list[str], float]:
    """The heaviest dependency chain.

    Args:
        order: units in topological order (imports first), e.g.
            ``DepGraph.order``.
        deps: unit -> direct imports.
        durations: unit -> seconds of work (missing units count 0).

    Returns ``(chain, seconds)``: the chain runs imports-first and its
    summed duration is the DAG's span (the lower bound on parallel
    wall-clock).  Ties break toward the alphabetically smallest unit,
    so the result is deterministic.
    """
    if not order:
        return [], 0.0
    best: dict[str, float] = {}
    via: dict[str, str | None] = {}
    for name in order:
        pred: str | None = None
        pred_cost = 0.0
        for dep in deps.get(name, ()):
            if dep not in best:
                continue  # import outside the graph (stable library)
            cost = best[dep]
            if cost > pred_cost or (cost == pred_cost and pred is not None
                                    and dep < pred):
                pred, pred_cost = dep, cost
            elif pred is None and cost == pred_cost == 0.0:
                pred = dep
        best[name] = durations.get(name, 0.0) + pred_cost
        via[name] = pred
    tail = min((name for name in best
                if best[name] == max(best.values()))) if best else None
    chain: list[str] = []
    node: str | None = tail
    while node is not None:
        chain.append(node)
        node = via[node]
    chain.reverse()
    return chain, best[tail] if tail is not None else 0.0


def phase_rollup(tracer) -> dict[str, dict]:
    """Per-span-name totals: ``{name: {"count": n, "seconds": s}}``."""
    out: dict[str, dict] = {}
    for span in tracer.all_spans():
        bucket = out.setdefault(span.name, {"count": 0, "seconds": 0.0})
        bucket["count"] += 1
        bucket["seconds"] += span.duration
    for bucket in out.values():
        bucket["seconds"] = round(bucket["seconds"], 6)
    return dict(sorted(out.items()))


def worker_occupancy(tracer) -> dict[str, float]:
    """Busy seconds per track, from each track's root spans.

    Overlapping spans on one track (retried attempts landing on the
    supervisor track, abandoned-then-finished workers) are counted by
    *interval union*, not summed -- a track can never report more busy
    time than wall clock.
    """
    by_track: dict[str, list[tuple[float, float]]] = {}
    for span in tracer.roots:
        by_track.setdefault(span.track, []).append(
            (span.start, span.end))
    return {track: round(_union_length(intervals), 6)
            for track, intervals in sorted(by_track.items())}


def worker_idle(tracer, jobs: int) -> dict:
    """How well a schedule kept ``jobs`` workers fed.

    Measures the ``worker-compile`` spans (actual busy time on
    workers) against the capacity ``jobs x`` the longest ``build``
    span's wall clock.  Busy time is the per-track interval *union*:
    when retries or abandoned attempts overlap on one track they count
    once, and ``occupancy`` is clamped to 1.0 -- a schedule can fill
    its capacity, never exceed it.  Wave barriers leave occupancy low
    on unbalanced graphs (every wave waits for its slowest unit);
    ready-set dispatch exists to raise it.  Durations only -- no
    claims when the tracer saw no build.
    """
    by_track: dict[str, list[tuple[float, float]]] = {}
    compiles = 0
    wall = 0.0
    for span in tracer.all_spans():
        if span.name == "worker-compile":
            by_track.setdefault(span.track, []).append(
                (span.start, span.end))
            compiles += 1
        elif span.name == "build":
            wall = max(wall, span.duration)
    busy = sum(_union_length(intervals)
               for intervals in by_track.values())
    capacity = jobs * wall
    occupancy = min(1.0, busy / capacity) if capacity > 0 else 0.0
    return {
        "jobs": jobs,
        "compiles": compiles,
        "busy_seconds": round(busy, 6),
        "build_wall_seconds": round(wall, 6),
        "idle_seconds": round(max(0.0, capacity - busy), 6),
        "occupancy": round(occupancy, 6),
    }


def request_rollup(tracer) -> dict:
    """Daemon request analytics from ``daemon-request`` spans.

    Returns the request count, how many were coalesced joins, and the
    latency spread -- the daemon benchmark's warm-request headline.
    """
    spans = [s for s in tracer.all_spans() if s.name == "daemon-request"]
    out = {
        "requests": len(spans),
        "coalesced": sum(1 for s in spans
                         if s.args.get("coalesced")),
    }
    if spans:
        latencies = sorted(s.duration for s in spans)
        out["latency_seconds"] = {
            "min": round(latencies[0], 6),
            "mean": round(sum(latencies) / len(latencies), 6),
            "max": round(latencies[-1], 6),
        }
    return out


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of ``[start, end]`` intervals."""
    total = 0.0
    last_end = float("-inf")
    for start, end in sorted(intervals):
        start = max(start, last_end)
        if end > start:
            total += end - start
            last_end = end
        else:
            last_end = max(last_end, end)
    return total


def span_coverage(tracer) -> float:
    """Fraction of the tracer's wall-clock covered by root spans.

    1.0 means every measured moment lies inside at least one span; a
    low number means unaccounted time (work the instrumentation cannot
    see).
    """
    wall = tracer.wall()
    if wall <= 0:
        return 1.0
    covered = _union_length(
        [(span.start, span.end) for span in tracer.roots])
    return min(1.0, covered / wall)
