"""Sampled always-on tracing: full spans 1-in-N, cheap counters always.

A fleet daemon wants to run instrumented *permanently*, but a full
:class:`~repro.obs.tracer.Tracer` keeps every span of every build
alive in memory.  This module gives the two-tier scheme production
tracers use:

- :class:`CounterMeter` is the always-on tier: it implements the
  :class:`~repro.obs.meter.BuildMeter` protocol with ``enabled=True``
  (so instrumented sites still report decisions, counters, worker
  spans) but stores only *aggregates* -- per-span-name count and total
  seconds, per-event-name counts, the counter totals.  Memory is O(
  distinct names), not O(spans).
- :class:`SamplingMeter` layers full tracing on top: every Nth
  ``build`` span gets a fresh ``Tracer`` that records the complete
  span tree for that build (exportable via Chrome JSON or OTLP); the
  other N-1 builds pay only the counter tier.  Aggregates cover *all*
  builds -- sampling never loses the totals, only per-span detail.

The daemon mounts a ``SamplingMeter`` when serving with
``--trace-sample N``; its ``stats`` request exposes the rolled-up
request/occupancy/hit-rate numbers (see
:meth:`repro.cm.daemon.BuildDaemon.stats`).
"""

from __future__ import annotations

import threading
import time

from repro.obs.tracer import Tracer


class _CountingSpan:
    """One live span of a :class:`CounterMeter`: measures its own
    duration, stores nothing else."""

    __slots__ = ("_meter", "_name", "_start")

    def __init__(self, meter: "CounterMeter", name: str):
        self._meter = meter
        self._name = name
        self._start = 0.0

    def set(self, **args) -> "_CountingSpan":
        return self  # aggregates keep no args

    def __enter__(self) -> "_CountingSpan":
        self._start = self._meter._clock()
        return self

    def __exit__(self, *exc) -> bool:
        self._meter._add_span(self._name,
                              self._meter._clock() - self._start)
        return False


class CounterMeter:
    """The always-on aggregate tier (see module docstring).

    Thread-safe; O(distinct names) memory however many builds flow
    through it.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        #: span name -> {"count": n, "seconds": total}.
        self.spans: dict[str, dict] = {}
        #: event name -> count.
        self.events: dict[str, int] = {}
        #: the ordinary monotonic counters.
        self.counters: dict[str, float] = {}

    def _add_span(self, name: str, seconds: float) -> None:
        with self._lock:
            bucket = self.spans.setdefault(
                name, {"count": 0, "seconds": 0.0})
            bucket["count"] += 1
            bucket["seconds"] += max(0.0, seconds)

    # -- the BuildMeter protocol ------------------------------------------

    def span(self, name: str, cat: str = "build",
             **args) -> _CountingSpan:
        return _CountingSpan(self, name)

    def event(self, name: str, cat: str = "build", **args) -> None:
        with self._lock:
            self.events[name] = self.events.get(name, 0) + 1

    def counter(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def complete_span(self, name: str, start: float, end: float,
                      cat: str = "build", track: str | None = None,
                      **args) -> None:
        self._add_span(name, end - start)

    # -- the rollup -------------------------------------------------------

    def rollup(self) -> dict:
        """The aggregate snapshot: spans, events, counters (rounded,
        key-sorted -- wire-stable for the daemon's ``stats`` reply)."""
        with self._lock:
            spans = {name: {"count": b["count"],
                            "seconds": round(b["seconds"], 6)}
                     for name, b in sorted(self.spans.items())}
            events = dict(sorted(self.events.items()))
            counters = {name: (int(v) if v == int(v) else round(v, 6))
                        for name, v in sorted(self.counters.items())}
        return {"spans": spans, "events": events, "counters": counters}


class _FanoutSpan:
    """A span handle fanning into the aggregate tier and (when this
    build is sampled) the full tracer; detaches the tracer when the
    sampled ``build`` span closes."""

    __slots__ = ("_meter", "_handles", "_detach")

    def __init__(self, meter: "SamplingMeter", handles, detach):
        self._meter = meter
        self._handles = handles
        self._detach = detach

    def set(self, **args) -> "_FanoutSpan":
        for handle in self._handles:
            handle.set(**args)
        return self

    def __enter__(self) -> "_FanoutSpan":
        for handle in self._handles:
            handle.__enter__()
        return self

    def __exit__(self, *exc) -> bool:
        for handle in reversed(self._handles):
            handle.__exit__(*exc)
        if self._detach is not None:
            self._meter._finish_sample(self._detach)
        return False


class SamplingMeter:
    """Full spans for 1-in-``sample`` builds, counters for the rest.

    ``sample=1`` traces every build; ``sample=N`` traces builds 1,
    N+1, 2N+1, ...  ``last_tracer`` holds the most recent completed
    sampled build's full tracer (the daemon's ``stats`` reply reports
    how many builds were sampled; clients wanting the spans export
    them from here).
    """

    enabled = True

    def __init__(self, sample: int = 10, clock=time.perf_counter,
                 tracer_factory=None):
        self.sample = max(1, sample)
        self._clock = clock
        self._factory = (tracer_factory if tracer_factory is not None
                         else (lambda: Tracer(clock=clock)))
        self.aggregate = CounterMeter(clock=clock)
        self._lock = threading.Lock()
        self.builds_seen = 0
        self.sampled_builds = 0
        #: The tracer of the sampled build currently in flight (None
        #: between samples).
        self.tracer: Tracer | None = None
        #: The most recent *completed* sampled build's tracer.
        self.last_tracer: Tracer | None = None

    def _finish_sample(self, tracer: Tracer) -> None:
        with self._lock:
            if self.tracer is tracer:
                self.tracer = None
            self.last_tracer = tracer

    # -- the BuildMeter protocol ------------------------------------------

    def span(self, name: str, cat: str = "build", **args) -> _FanoutSpan:
        detach = None
        with self._lock:
            if name == "build":
                self.builds_seen += 1
                if (self.builds_seen - 1) % self.sample == 0:
                    self.tracer = detach = self._factory()
                    self.sampled_builds += 1
            tracer = self.tracer
        handles = [self.aggregate.span(name, cat=cat, **args)]
        if tracer is not None:
            handles.append(tracer.span(name, cat=cat, **args))
        return _FanoutSpan(self, handles, detach)

    def event(self, name: str, cat: str = "build", **args) -> None:
        self.aggregate.event(name, cat=cat, **args)
        tracer = self.tracer
        if tracer is not None:
            tracer.event(name, cat=cat, **args)

    def counter(self, name: str, value: float = 1) -> None:
        self.aggregate.counter(name, value)
        tracer = self.tracer
        if tracer is not None:
            tracer.counter(name, value)

    def complete_span(self, name: str, start: float, end: float,
                      cat: str = "build", track: str | None = None,
                      **args) -> None:
        self.aggregate.complete_span(name, start, end, cat=cat,
                                     track=track, **args)
        tracer = self.tracer
        if tracer is not None:
            tracer.complete_span(name, start, end, cat=cat,
                                 track=track, **args)

    # -- the rollup -------------------------------------------------------

    def rollup(self) -> dict:
        out = self.aggregate.rollup()
        with self._lock:
            out["sample"] = self.sample
            out["builds_seen"] = self.builds_seen
            out["sampled_builds"] = self.sampled_builds
        return out
