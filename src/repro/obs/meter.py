"""The :class:`BuildMeter` seam: how instrumented code reports itself.

Instrumented call sites throughout the compilation manager (builders,
the store, the unit pipeline, the wavefront scheduler) talk to a meter
rather than to a concrete tracer, so the cost of instrumentation when
nobody is listening is a handful of no-op method calls:

    with meter.span("parse", cat="phase", unit=name):
        ...

:data:`NULL_METER` is the default listener; it allocates nothing and
returns a single shared no-op span.  ``benchmarks/
test_bench_trace_overhead.py`` gates its cost at under 5% of a build.
:class:`repro.obs.tracer.Tracer` is the real implementation.
"""

from __future__ import annotations

from typing import ContextManager, Protocol, runtime_checkable


@runtime_checkable
class BuildMeter(Protocol):
    """What an instrumented call site may ask of its listener.

    Implementations must be safe to call from worker threads (the
    wavefront scheduler's thread pool shares one meter).
    """

    #: False for the null meter; instrumented code may use this to skip
    #: work that only exists to feed the meter (building arg dicts,
    #: counting collections).
    enabled: bool

    def span(self, name: str, cat: str = "build",
             **args) -> ContextManager:
        """A nested timed region; ``with meter.span(...) as sp`` and
        ``sp.set(key=value)`` attaches results computed inside."""
        ...

    def event(self, name: str, cat: str = "build", **args) -> None:
        """An instant event (a decision, a quarantine, a dispatch)."""
        ...

    def counter(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` onto a named monotonic counter."""
        ...

    def complete_span(self, name: str, start: float, end: float,
                      cat: str = "build", track: str | None = None,
                      **args) -> None:
        """Record an already-timed region (e.g. a worker's compile,
        measured on the worker and shipped back with the result).
        ``start``/``end`` are in the meter's own clock domain."""
        ...


class NullSpan:
    """The shared do-nothing span."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> "NullSpan":
        return self


_NULL_SPAN = NullSpan()


class NullMeter:
    """The default meter: discards everything, allocates nothing."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, cat: str = "build", **args) -> NullSpan:
        return _NULL_SPAN

    def event(self, name: str, cat: str = "build", **args) -> None:
        return None

    def counter(self, name: str, value: float = 1) -> None:
        return None

    def complete_span(self, name: str, start: float, end: float,
                      cat: str = "build", track: str | None = None,
                      **args) -> None:
        return None


#: The process-wide default listener.
NULL_METER = NullMeter()
