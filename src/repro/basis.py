"""The initial basis: primitives plus an SML-language prelude.

Like SML/NJ, most of the pervasive environment is written in the source
language and *bootstrapped through the compiler itself* -- every session
begins by parsing, elaborating, and evaluating :data:`PRELUDE`.  The
result is a :class:`Basis` pairing a static environment with the matching
dynamic environment; compilation units are compiled and executed relative
to it.

The basis plays the role of the paper's "pervasive" unit: its stamps are
owned by the pseudo-pid ``BASIS_PID`` so that dehydration can stub
references to pervasive objects.
"""

from __future__ import annotations

from repro.dynamic.builtins import primitive_dynenv
from repro.dynamic.evaluate import eval_decs
from repro.dynamic.values import DynEnv
from repro.elab.topdec import elaborate_decs
from repro.lang.parser import parse_program
from repro.semant import prim
from repro.semant.env import Env, stamp_index

#: The reserved pid (hex digest string) of the pervasive basis.
BASIS_PID = "0" * 32

PRELUDE = r"""
(* ---- control and combinators -------------------------------------- *)
fun not b = if b then false else true
fun (f o g) x = f (g x)
fun a before b = a

(* ---- options -------------------------------------------------------- *)
fun getOpt (opt, d) = case opt of SOME x => x | NONE => d
fun isSome opt = case opt of SOME _ => true | NONE => false
fun valOf opt = case opt of SOME x => x | NONE => raise Option

(* ---- lists ----------------------------------------------------------- *)
fun rev l =
  let fun go (nil, acc) = acc
        | go (h :: t, acc) = go (t, h :: acc)
  in go (l, nil) end

fun map f =
  let fun go nil = nil
        | go (h :: t) = f h :: go t
  in go end

fun app f =
  let fun go nil = ()
        | go (h :: t) = (f h; go t)
  in go end

fun foldl f b l =
  let fun go (nil, acc) = acc
        | go (h :: t, acc) = go (t, f (h, acc))
  in go (l, b) end

fun foldr f b l = foldl f b (rev l)

fun length l = foldl (fn (_, n) => n + 1) 0 l

fun hd l = case l of nil => raise Empty | h :: _ => h
fun tl l = case l of nil => raise Empty | _ :: t => t
fun null l = case l of nil => true | _ => false

fun l @ r = case l of nil => r | h :: t => h :: (t @ r)

structure List = struct
  exception Empty
  val map = map
  val app = app
  val foldl = foldl
  val foldr = foldr
  val rev = rev
  val length = length
  val hd = hd
  val tl = tl
  val null = null
  fun filter pred l =
    foldr (fn (x, acc) => if pred x then x :: acc else acc) nil l
  fun partition pred l =
    foldr (fn (x, (yes, no)) =>
             if pred x then (x :: yes, no) else (yes, x :: no))
          (nil, nil) l
  fun exists pred l =
    case l of nil => false | h :: t => pred h orelse exists pred t
  fun all pred l =
    case l of nil => true | h :: t => pred h andalso all pred t
  fun find pred l =
    case l of
      nil => NONE
    | h :: t => if pred h then SOME h else find pred t
  fun nth (l, n) =
    if n < 0 then raise Subscript
    else case l of
           nil => raise Subscript
         | h :: t => if n = 0 then h else nth (t, n - 1)
  fun take (l, n) =
    if n < 0 then raise Subscript
    else if n = 0 then nil
    else case l of nil => raise Subscript | h :: t => h :: take (t, n - 1)
  fun drop (l, n) =
    if n < 0 then raise Subscript
    else if n = 0 then l
    else case l of nil => raise Subscript | _ :: t => drop (t, n - 1)
  fun concat ls = foldr (fn (l, acc) => l @ acc) nil ls
  fun tabulate (n, f) =
    let fun go i = if i >= n then nil else f i :: go (i + 1)
    in if n < 0 then raise Size else go 0 end
  fun zip (l1, l2) =
    case (l1, l2) of
      (a :: t1, b :: t2) => (a, b) :: zip (t1, t2)
    | _ => nil
  fun last l =
    case l of nil => raise Empty | x :: nil => x | _ :: t => last t
  fun mapPartial f l =
    foldr (fn (x, acc) => case f x of SOME y => y :: acc | NONE => acc)
          nil l
end

structure Option = struct
  exception Option
  val getOpt = getOpt
  val isSome = isSome
  val valOf = valOf
  fun map f opt = case opt of SOME x => SOME (f x) | NONE => NONE
  fun mapPartial f opt = case opt of SOME x => f x | NONE => NONE
  fun filter pred x = if pred x then SOME x else NONE
  fun join opt = case opt of SOME inner => inner | NONE => NONE
  fun app f opt = case opt of SOME x => (f x; ()) | NONE => ()
end

structure Bool = struct
  val not = not
  fun toString b = if b then "true" else "false"
end

(* ---- integers beyond the primitives --------------------------------- *)
fun min (a, b) = if a < b then a else b : int
fun max (a, b) = if a > b then a else b : int

(* ---- characters ------------------------------------------------------ *)
structure Char = struct
  val ord = ord
  val chr = chr
  fun isDigit c = ord c >= 48 andalso ord c <= 57
  fun isUpper c = ord c >= 65 andalso ord c <= 90
  fun isLower c = ord c >= 97 andalso ord c <= 122
  fun isAlpha c = isUpper c orelse isLower c
  fun isAlphaNum c = isAlpha c orelse isDigit c
  fun isSpace c = ord c = 32 orelse (ord c >= 9 andalso ord c <= 13)
  fun toUpper c = if isLower c then chr (ord c - 32) else c
  fun toLower c = if isUpper c then chr (ord c + 32) else c
  fun contains s c = List.exists (fn x => x = c) (explode s)
  (* Re-export the primitive comparisons last: binding them earlier
     would shadow the *integer* operators the functions above use. *)
  val op< = Char.<
  val op<= = Char.<=
  val compare = Char.compare
end

(* ---- strings --------------------------------------------------------- *)
structure String = struct
  val size = size
  val substring = substring
  val concat = concat
  val implode = implode
  val explode = explode
  val str = str
  fun concatWith sep l =
    case l of
      nil => ""
    | x :: nil => x
    | h :: t => h ^ sep ^ concatWith sep t
  fun map f s = implode (List.map f (explode s))
  fun translate f s = concat (List.map f (explode s))
  fun isPrefix p s =
    size p <= size s andalso substring (s, 0, size p) = p
  fun isSuffix p s =
    size p <= size s andalso substring (s, size s - size p, size p) = p
  fun fields pred s =
    let fun go (nil, cur, acc) = rev (implode (rev cur) :: acc)
          | go (c :: cs, cur, acc) =
              if pred c then go (cs, nil, implode (rev cur) :: acc)
              else go (cs, c :: cur, acc)
    in go (explode s, nil, nil) end
  fun tokens pred s =
    List.filter (fn t => size t > 0) (fields pred s)
  (* Primitive re-exports last (see Char above for why). *)
  val op< = String.<
  val op<= = String.<=
  val op> = String.>
  val op>= = String.>=
  val compare = String.compare
  val sub = String.sub
end

(* ---- pairs of lists --------------------------------------------------- *)
structure ListPair = struct
  fun zip (l1, l2) = List.zip (l1, l2)
  fun unzip l =
    foldr (fn ((a, b), (xs, ys)) => (a :: xs, b :: ys)) (nil, nil) l
  fun map f pair = List.map f (zip pair)
  fun app f pair = List.app f (zip pair)
  fun all pred pair = List.all pred (zip pair)
  fun exists pred pair = List.exists pred (zip pair)
  fun foldl f b pair =
    List.foldl (fn ((x, y), acc) => f (x, y, acc)) b (zip pair)
end
"""

# The List structure redeclares exception Empty; keep the pervasive one
# referenced so handlers over `Empty` at top level still match the one
# raised by hd/tl (they use the pervasive Empty from the primitive env).


class Basis:
    """The pervasive environment pair.

    Attributes:
        static_env: layered static environment (primitives + prelude).
        dyn_env: the matching dynamic environment.
        owned_stamp_ids: stamps owned by the basis pseudo-unit.
        stamp_idx: stamp id -> semantic object, for rehydration.
    """

    def __init__(self, static_env: Env, dyn_env: DynEnv,
                 owned_stamp_ids: set[int]):
        self.static_env = static_env
        self.dyn_env = dyn_env
        self.owned_stamp_ids = owned_stamp_ids
        self.stamp_idx = stamp_index(static_env)

    def child_envs(self) -> tuple[Env, DynEnv]:
        """Fresh frames layered on the basis, for a client session."""
        return self.static_env.child(), self.dyn_env.child()


_CACHED: Basis | None = None


def make_basis(print_sink=None, fresh: bool = False) -> Basis:
    """Build (or return the cached) initial basis.

    The basis is deterministic and shared across the process by default;
    ``fresh=True`` forces a rebuild (used by tests that replace the print
    sink).
    """
    global _CACHED
    if _CACHED is not None and not fresh and print_sink is None:
        return _CACHED

    static_env = prim.primitive_static_env()
    dyn_env = primitive_dynenv(print_sink)

    decs = parse_program(PRELUDE)
    prelude_static, elaborator = elaborate_decs(decs, static_env)
    prelude_dyn = dyn_env.child()
    eval_decs(decs, prelude_dyn)

    full_static = prelude_static.atop(static_env)
    owned = set(elaborator.new_stamps)
    owned.update(
        tycon.stamp.id
        for tycon in (prim.BOOL, prim.LIST, prim.OPTION, prim.ORDER)
    )
    owned.update(
        struct.stamp.id for struct in prim.primitive_structures().values()
    )
    basis = Basis(full_static, prelude_dyn, owned)
    if print_sink is None and not fresh:
        _CACHED = basis
    return basis
